package tlb

import (
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

func TestTLBBasicHitMiss(t *testing.T) {
	tl := NewTLB("t", 4, 2)
	if tl.Lookup(1) {
		t.Error("empty TLB hit")
	}
	tl.Insert(1)
	if !tl.Lookup(1) {
		t.Error("inserted tag missed")
	}
	hits, misses := tl.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTLB("bad", 0, 4)
}

func TestTLBLRUEviction(t *testing.T) {
	// 1 set, 2 ways: inserting 3 distinct tags must evict the LRU.
	tl := NewTLB("t", 1, 2)
	tl.Insert(10)
	tl.Insert(20)
	tl.Lookup(10) // 10 becomes MRU
	tl.Insert(30) // evicts 20
	if !tl.Probe(10) {
		t.Error("MRU tag evicted")
	}
	if tl.Probe(20) {
		t.Error("LRU tag survived")
	}
	if !tl.Probe(30) {
		t.Error("new tag missing")
	}
}

func TestTLBSetIsolation(t *testing.T) {
	tl := NewTLB("t", 4, 1)
	// Tags 0..3 land in distinct sets; none should evict another.
	for tag := uint64(0); tag < 4; tag++ {
		tl.Insert(tag)
	}
	for tag := uint64(0); tag < 4; tag++ {
		if !tl.Probe(tag) {
			t.Errorf("tag %d evicted despite distinct sets", tag)
		}
	}
}

func TestTLBInsertExistingPromotes(t *testing.T) {
	tl := NewTLB("t", 1, 2)
	tl.Insert(1)
	tl.Insert(2)
	tl.Insert(1) // promote, not duplicate
	tl.Insert(3) // evicts 2
	if tl.Probe(2) || !tl.Probe(1) || !tl.Probe(3) {
		t.Error("re-insert did not promote")
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tl := NewTLB("t", 2, 2)
	tl.Insert(1)
	tl.Insert(2)
	tl.Invalidate(1)
	if tl.Probe(1) {
		t.Error("invalidated tag still present")
	}
	if !tl.Probe(2) {
		t.Error("invalidate removed wrong tag")
	}
	tl.Flush()
	if tl.Probe(2) {
		t.Error("flush left entries")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	tl := NewTLB("t", 1, 2)
	tl.Insert(1)
	tl.Insert(2) // order: 2 MRU, 1 LRU
	tl.Probe(1)  // must NOT promote
	tl.Insert(3) // evicts 1
	if tl.Probe(1) {
		t.Error("Probe perturbed LRU order")
	}
	h, m := tl.Stats()
	if h != 0 || m != 0 {
		t.Error("Probe updated stats")
	}
}

func TestSkylakeGeometry(t *testing.T) {
	cfg := Skylake()
	if n := cfg.L1[units.Size4K].Sets * cfg.L1[units.Size4K].Ways; n != 64 {
		t.Errorf("L1 4KB entries = %d", n)
	}
	if n := cfg.L1[units.Size2M].Sets * cfg.L1[units.Size2M].Ways; n != 32 {
		t.Errorf("L1 2MB entries = %d", n)
	}
	if n := cfg.L1[units.Size1G].Sets * cfg.L1[units.Size1G].Ways; n != 4 {
		t.Errorf("L1 1GB entries = %d", n)
	}
	if n := cfg.L2Shared.Sets * cfg.L2Shared.Ways; n != 1536 {
		t.Errorf("L2 shared entries = %d", n)
	}
	if n := cfg.L2Huge.Sets * cfg.L2Huge.Ways; n != 16 {
		t.Errorf("L2 1GB entries = %d", n)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(Skylake())
	va := uint64(123 * units.Page4K)
	if lvl := h.Access(va, units.Size4K); lvl != Miss {
		t.Errorf("cold access = %v", lvl)
	}
	if lvl := h.Access(va, units.Size4K); lvl != HitL1 {
		t.Errorf("warm access = %v", lvl)
	}
	acc, l1, _, walks := h.Counts(units.Size4K)
	if acc != 2 || l1 != 1 || walks != 1 {
		t.Errorf("counts = %d/%d/%d", acc, l1, walks)
	}
}

func TestHierarchyL2Refill(t *testing.T) {
	h := NewHierarchy(Skylake())
	// Touch 65 distinct pages mapping to enough sets to overflow the 64-entry
	// L1 but stay within the 1536-entry L2; re-touching the first page should
	// be at worst an L2 hit, never a walk.
	for i := uint64(0); i < 128; i++ {
		h.Access(i*units.Page4K, units.Size4K)
	}
	lvl := h.Access(0, units.Size4K)
	if lvl == Miss {
		t.Errorf("page evicted from 1536-entry L2 after only 128 pages")
	}
}

func TestHierarchy1GBCapacity(t *testing.T) {
	h := NewHierarchy(Skylake())
	// 20 distinct 1GB pages exceed the 4+16 entries: re-access of the oldest
	// must walk again; but 4 pages fit entirely in L1.
	for i := uint64(0); i < 4; i++ {
		h.Access(i*units.Page1G, units.Size1G)
	}
	for i := uint64(0); i < 4; i++ {
		if lvl := h.Access(i*units.Page1G, units.Size1G); lvl != HitL1 {
			t.Errorf("1GB page %d not in L1: %v", i, lvl)
		}
	}
	_, _, _, walksBefore := h.Counts(units.Size1G)
	for i := uint64(0); i < 64; i++ {
		h.Access(i*units.Page1G, units.Size1G)
	}
	_, _, _, walksAfter := h.Counts(units.Size1G)
	if walksAfter-walksBefore < 32 {
		t.Errorf("64 streaming 1GB pages caused only %d walks", walksAfter-walksBefore)
	}
}

func TestSharedL2For4KAnd2M(t *testing.T) {
	h := NewHierarchy(Skylake())
	if h.l2[units.Size4K] != h.l2[units.Size2M] {
		t.Error("4KB and 2MB must share one L2 structure")
	}
	if h.l2[units.Size1G] == h.l2[units.Size4K] {
		t.Error("1GB must have its own L2 structure")
	}
}

func TestNoTagAliasingAcrossSizes(t *testing.T) {
	h := NewHierarchy(Skylake())
	// VA 0 as a 4KB page and VA 0 as a 2MB page are different translations;
	// inserting one must not hit for the other.
	h.Access(0, units.Size4K)
	_, _, _, walksBefore := h.Counts(units.Size2M)
	if lvl := h.Access(0, units.Size2M); lvl != Miss {
		t.Errorf("2MB access aliased onto 4KB entry: %v", lvl)
	}
	_, _, _, walksAfter := h.Counts(units.Size2M)
	if walksAfter != walksBefore+1 {
		t.Error("2MB walk not counted")
	}
}

func TestInvalidatePage(t *testing.T) {
	h := NewHierarchy(Skylake())
	va := uint64(7 * units.Page2M)
	h.Access(va, units.Size2M)
	h.InvalidatePage(va, units.Size2M)
	if lvl := h.Access(va, units.Size2M); lvl != Miss {
		t.Errorf("access after invalidate = %v", lvl)
	}
}

func TestFlushAll(t *testing.T) {
	h := NewHierarchy(Skylake())
	h.Access(0, units.Size4K)
	h.Access(0, units.Size2M)
	h.Access(0, units.Size1G)
	h.FlushAll()
	for _, s := range []units.PageSize{units.Size4K, units.Size2M, units.Size1G} {
		if lvl := h.Access(0, s); lvl != Miss {
			t.Errorf("%v entry survived FlushAll", s)
		}
	}
}

func TestResetStats(t *testing.T) {
	h := NewHierarchy(Skylake())
	h.Access(0, units.Size4K)
	h.ResetStats()
	if h.TotalAccesses() != 0 || h.TotalWalks() != 0 {
		t.Error("ResetStats left counters")
	}
	// Contents stay warm.
	if lvl := h.Access(0, units.Size4K); lvl != HitL1 {
		t.Errorf("ResetStats cleared contents: %v", lvl)
	}
}

// The central architectural property the paper exploits: a working set that
// thrashes the 2MB TLB fits easily in 1GB entries.
func TestReachAdvantageOf1GBPages(t *testing.T) {
	h := NewHierarchy(Skylake())
	rng := xrand.New(42)
	const footprint = 8 * units.GiB
	const accesses = 200000

	// With 2MB pages: 4096 pages >> 1536-entry L2 → mostly walks.
	for i := 0; i < accesses; i++ {
		va := rng.Uint64n(footprint)
		h.Access(va, units.Size2M)
	}
	_, _, _, walks2M := h.Counts(units.Size2M)

	// With 1GB pages: 8 pages < 16-entry L2 → essentially no walks.
	for i := 0; i < accesses; i++ {
		va := rng.Uint64n(footprint)
		h.Access(va, units.Size1G)
	}
	_, _, _, walks1G := h.Counts(units.Size1G)

	if walks2M < accesses/2 {
		t.Errorf("2MB walks = %d, expected thrashing (> %d)", walks2M, accesses/2)
	}
	if walks1G > 100 {
		t.Errorf("1GB walks = %d, expected near-zero", walks1G)
	}
}

func TestPWCWalkAccesses(t *testing.T) {
	p := NewPWC(Skylake())
	va := uint64(5 * units.Page1G)
	// Cold: full walks.
	if got := p.WalkAccesses(va, units.Size4K); got != 4 {
		t.Errorf("cold 4KB walk = %d", got)
	}
	// Same 2MB range: PDE cache hit → 1 access.
	if got := p.WalkAccesses(va+units.Page4K, units.Size4K); got != 1 {
		t.Errorf("warm 4KB walk = %d", got)
	}
	// Different 2MB range, same 1GB range: PDPTE hit → 2 accesses.
	if got := p.WalkAccesses(va+units.Page2M, units.Size4K); got != 2 {
		t.Errorf("PDPTE-hit 4KB walk = %d", got)
	}
	// Different 1GB range, same 512GB range: PML4E hit → 3 accesses.
	if got := p.WalkAccesses(va+units.Page1G, units.Size4K); got != 3 {
		t.Errorf("PML4E-hit 4KB walk = %d", got)
	}
}

func TestPWCWalkAccesses2MAnd1G(t *testing.T) {
	p := NewPWC(Skylake())
	if got := p.WalkAccesses(0, units.Size2M); got != 3 {
		t.Errorf("cold 2MB walk = %d", got)
	}
	// PDPTE now cached → 1 access.
	if got := p.WalkAccesses(units.Page2M, units.Size2M); got != 1 {
		t.Errorf("warm 2MB walk = %d", got)
	}
	p2 := NewPWC(Skylake())
	if got := p2.WalkAccesses(0, units.Size1G); got != 2 {
		t.Errorf("cold 1GB walk = %d", got)
	}
	if got := p2.WalkAccesses(units.Page1G, units.Size1G); got != 1 {
		t.Errorf("warm 1GB walk = %d", got)
	}
}

func TestPWCFlush(t *testing.T) {
	p := NewPWC(Skylake())
	p.WalkAccesses(0, units.Size4K)
	p.Flush()
	if got := p.WalkAccesses(units.Page4K, units.Size4K); got != 4 {
		t.Errorf("walk after flush = %d, want 4", got)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(Skylake())
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(rng.Uint64n(4*units.GiB), units.Size4K)
	}
}
