// Package units defines the page sizes, buddy orders and address arithmetic
// shared by every layer of the simulator. All addresses are byte addresses
// represented as uint64; all sizes are in bytes.
//
// Terminology follows the paper and Linux:
//
//   - a "frame" is a 4KB physical page frame; frame numbers (PFNs) index them;
//   - a buddy "order" n describes a 2^n-frame chunk (order 0 = 4KB,
//     order 9 = 2MB, order 18 = 1GB);
//   - a "region" is a 1GB-aligned 1GB span of physical memory, the granularity
//     at which Trident's smart compaction keeps statistics.
package units

import "fmt"

// Page sizes supported by x86-64 processors.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	Page4K = 4 * KiB
	Page2M = 2 * MiB
	Page1G = 1 * GiB
)

// Buddy orders for each page size (measured in 4KB frames).
const (
	Order4K = 0
	Order2M = 9
	Order1G = 18

	// StockMaxOrder is the largest order tracked by the unmodified Linux
	// buddy allocator (MAX_ORDER-1 = 10, i.e. 4MB chunks).
	StockMaxOrder = 10

	// TridentMaxOrder is the largest order tracked once Trident extends the
	// buddy free lists up to 1GB chunks (§5.1.1).
	TridentMaxOrder = Order1G
)

// PageSize identifies one of the three x86-64 page sizes.
type PageSize int

// The three translation granularities of x86-64.
const (
	Size4K PageSize = iota
	Size2M
	Size1G
	NumPageSizes
)

// Bytes returns the size in bytes of s.
func (s PageSize) Bytes() uint64 {
	switch s {
	case Size4K:
		return Page4K
	case Size2M:
		return Page2M
	case Size1G:
		return Page1G
	}
	panic(fmt.Sprintf("units: invalid page size %d", int(s)))
}

// Order returns the buddy order of s.
func (s PageSize) Order() int {
	switch s {
	case Size4K:
		return Order4K
	case Size2M:
		return Order2M
	case Size1G:
		return Order1G
	}
	panic(fmt.Sprintf("units: invalid page size %d", int(s)))
}

// Frames returns the number of 4KB frames covered by one page of size s.
func (s PageSize) Frames() uint64 { return s.Bytes() / Page4K }

// Shift returns log2 of the size in bytes (12/21/30), so hot paths can
// replace division by Bytes() with a right shift.
func (s PageSize) Shift() uint {
	switch s {
	case Size4K:
		return 12
	case Size2M:
		return 21
	case Size1G:
		return 30
	}
	panic(fmt.Sprintf("units: invalid page size %d", int(s)))
}

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Size4K:
		return "4KB"
	case Size2M:
		return "2MB"
	case Size1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", int(s))
}

// OrderSize returns the byte size of a buddy chunk of the given order.
func OrderSize(order int) uint64 { return Page4K << uint(order) }

// OrderForSize returns the smallest order whose chunk size is >= size.
func OrderForSize(size uint64) int {
	order := 0
	for OrderSize(order) < size {
		order++
	}
	return order
}

// Align rounds addr down to the nearest multiple of align (a power of two).
func Align(addr, align uint64) uint64 { return addr &^ (align - 1) }

// AlignUp rounds addr up to the nearest multiple of align (a power of two).
func AlignUp(addr, align uint64) uint64 { return (addr + align - 1) &^ (align - 1) }

// IsAligned reports whether addr is a multiple of align (a power of two).
func IsAligned(addr, align uint64) bool { return addr&(align-1) == 0 }

// FrameNumber returns the PFN containing physical address pa.
func FrameNumber(pa uint64) uint64 { return pa / Page4K }

// FrameAddr returns the physical address of frame pfn.
func FrameAddr(pfn uint64) uint64 { return pfn * Page4K }

// RegionNumber returns the 1GB region index containing physical address pa.
func RegionNumber(pa uint64) uint64 { return pa / Page1G }

// RegionOfFrame returns the 1GB region index containing frame pfn.
func RegionOfFrame(pfn uint64) uint64 { return pfn / (Page1G / Page4K) }

// FramesPerRegion is the number of 4KB frames in a 1GB region.
const FramesPerRegion = Page1G / Page4K

// HumanBytes renders n bytes with a binary-unit suffix, e.g. "1.5GB".
func HumanBytes(n uint64) string {
	switch {
	case n >= GiB:
		return trimZero(fmt.Sprintf("%.2f", float64(n)/GiB)) + "GB"
	case n >= MiB:
		return trimZero(fmt.Sprintf("%.2f", float64(n)/MiB)) + "MB"
	case n >= KiB:
		return trimZero(fmt.Sprintf("%.2f", float64(n)/KiB)) + "KB"
	}
	return fmt.Sprintf("%dB", n)
}

func trimZero(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
