package units

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	cases := []struct {
		s    PageSize
		want uint64
	}{
		{Size4K, 4096},
		{Size2M, 2 << 20},
		{Size1G, 1 << 30},
	}
	for _, c := range cases {
		if got := c.s.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestPageSizeOrder(t *testing.T) {
	if Size4K.Order() != 0 || Size2M.Order() != 9 || Size1G.Order() != 18 {
		t.Fatalf("orders = %d,%d,%d; want 0,9,18",
			Size4K.Order(), Size2M.Order(), Size1G.Order())
	}
}

func TestPageSizeFrames(t *testing.T) {
	if Size4K.Frames() != 1 {
		t.Errorf("4K frames = %d", Size4K.Frames())
	}
	if Size2M.Frames() != 512 {
		t.Errorf("2M frames = %d", Size2M.Frames())
	}
	if Size1G.Frames() != 512*512 {
		t.Errorf("1G frames = %d", Size1G.Frames())
	}
}

func TestPageSizeString(t *testing.T) {
	if Size4K.String() != "4KB" || Size2M.String() != "2MB" || Size1G.String() != "1GB" {
		t.Fatal("unexpected String() output")
	}
	if s := PageSize(42).String(); s != "PageSize(42)" {
		t.Fatalf("invalid size String() = %q", s)
	}
}

func TestInvalidPageSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { PageSize(99).Bytes() },
		func() { PageSize(99).Order() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid PageSize")
				}
			}()
			f()
		}()
	}
}

func TestOrderSize(t *testing.T) {
	if OrderSize(0) != Page4K {
		t.Errorf("OrderSize(0) = %d", OrderSize(0))
	}
	if OrderSize(9) != Page2M {
		t.Errorf("OrderSize(9) = %d", OrderSize(9))
	}
	if OrderSize(18) != Page1G {
		t.Errorf("OrderSize(18) = %d", OrderSize(18))
	}
}

func TestOrderForSize(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{1, 0},
		{Page4K, 0},
		{Page4K + 1, 1},
		{Page2M, 9},
		{Page2M + 1, 10},
		{Page1G, 18},
	}
	for _, c := range cases {
		if got := OrderForSize(c.size); got != c.want {
			t.Errorf("OrderForSize(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestAlignment(t *testing.T) {
	if Align(Page2M+123, Page2M) != Page2M {
		t.Error("Align down failed")
	}
	if AlignUp(Page2M+123, Page2M) != 2*Page2M {
		t.Error("AlignUp failed")
	}
	if AlignUp(Page2M, Page2M) != Page2M {
		t.Error("AlignUp of aligned value should be identity")
	}
	if !IsAligned(3*Page1G, Page1G) || IsAligned(3*Page1G+Page4K, Page1G) {
		t.Error("IsAligned failed")
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(addr uint32) bool {
		a := uint64(addr)
		down := Align(a, Page4K)
		up := AlignUp(a, Page4K)
		if down > a || up < a {
			return false
		}
		if !IsAligned(down, Page4K) || !IsAligned(up, Page4K) {
			return false
		}
		return up-down == 0 || up-down == Page4K
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRegionArithmetic(t *testing.T) {
	pa := uint64(5*Page1G + 7*Page4K)
	if FrameNumber(pa) != 5*FramesPerRegion+7 {
		t.Errorf("FrameNumber = %d", FrameNumber(pa))
	}
	if FrameAddr(FrameNumber(pa)) != Align(pa, Page4K) {
		t.Error("FrameAddr/FrameNumber roundtrip failed")
	}
	if RegionNumber(pa) != 5 {
		t.Errorf("RegionNumber = %d", RegionNumber(pa))
	}
	if RegionOfFrame(FrameNumber(pa)) != 5 {
		t.Errorf("RegionOfFrame = %d", RegionOfFrame(FrameNumber(pa)))
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512B"},
		{4 * KiB, "4KB"},
		{Page2M, "2MB"},
		{Page1G, "1GB"},
		{Page1G + Page1G/2, "1.5GB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
