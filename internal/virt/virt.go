// Package virt models the virtualization stack of §§2, 4.2 and 6: a VM is
// a host-side task whose virtual addresses are the guest-physical addresses
// (the EPT), plus a complete guest kernel managing that guest-physical
// space with its own buddy allocator, fault policies and daemons.
//
// Address translation in a VM is two-dimensional (package mmu); the page
// size at each level is decided independently — by the host's policy when
// backing guest memory, and by the guest's policy when mapping application
// memory — which is how Figure 2's 4KB+4KB / 2MB+2MB / 1GB+1GB
// configurations arise.
//
// Trident_pv's hypercall is implemented literally: the guest passes batches
// of (source gPA, destination gPA) pairs, and the hypervisor exchanges the
// corresponding gPA→hPA mappings (Figure 8c), demoting any covering host
// 1GB mapping to 2MB first (the exchange needs 2MB-granular host entries).
package virt

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/pagetable"
	"repro/internal/perfmodel"
	"repro/internal/promote"
	"repro/internal/units"
	"repro/internal/vmm"
)

// Stats accumulates hypervisor-side activity.
type Stats struct {
	// Hypercalls counts guest→host transitions for pv exchanges.
	Hypercalls uint64
	// PagesExchanged counts 2MB-granule gPA↔hPA exchanges performed.
	PagesExchanged uint64
	// HostDemotions counts host 1GB mappings split to satisfy exchanges.
	HostDemotions uint64
	// ExchangeFailures counts pairs the hypervisor could not exchange (the
	// guest falls back to copying; §6: "On failure, the guest falls back to
	// individually copy contents of pages").
	ExchangeFailures uint64
	// Nanoseconds is the modeled hypervisor time for exchanges.
	Nanoseconds float64
}

// VM is one virtual machine.
type VM struct {
	// Host is the hypervisor's kernel; HostTask is the VM's memory as seen
	// by the host (VAs = gPAs).
	Host     *kernel.Kernel
	HostTask *kernel.Task
	// Guest is the guest OS kernel managing guest-physical memory.
	Guest *kernel.Kernel

	S Stats
}

// New creates a VM with guestBytes of memory, backed immediately through
// hostPolicy (KVM backs guest memory with THP in the paper's baseline; with
// Trident when Trident runs at the host level). guestMaxOrder selects the
// guest buddy flavour (stock vs Trident).
func New(host *kernel.Kernel, hostPolicy fault.Policy, guestBytes uint64, guestMaxOrder int) (*VM, error) {
	if guestBytes == 0 || guestBytes%units.Page1G != 0 {
		return nil, fmt.Errorf("virt: guest memory %d not a 1GB multiple", guestBytes)
	}
	vm := &VM{
		Host:     host,
		HostTask: host.NewTask("vm"),
		Guest:    kernel.New(guestBytes, guestMaxOrder),
	}
	if err := vm.HostTask.AS.MMapFixed(0, guestBytes, vmm.KindAnon); err != nil {
		return nil, fmt.Errorf("virt: gPA space: %w", err)
	}
	// Back all guest memory now (a VM that touches its whole memory at
	// boot; also what the paper's async zero-fill boot-time experiment
	// exercises).
	for gpa := uint64(0); gpa < guestBytes; {
		r, err := hostPolicy.Handle(vm.HostTask, gpa)
		if err != nil {
			return nil, fmt.Errorf("virt: backing gPA %#x: %w", gpa, err)
		}
		gpa = r.VA + r.Size.Bytes()
	}
	return vm, nil
}

// HostPT returns the gPA→hPA table (the EPT).
func (vm *VM) HostPT() *pagetable.Table { return vm.HostTask.AS.PT }

// BootLatencyNs returns the modeled time to back the guest's memory given
// the host fault policy's accumulated latency — the §5.1.2 VM-boot
// experiment (70GB VM: 25 s → 13 s with async zero-fill).
func (vm *VM) BootLatencyNs(hostPolicy fault.Policy) float64 {
	return hostPolicy.FaultStats().TotalLatencyNs
}

// ExchangeGPAs performs one hypercall exchanging the gPA→hPA mappings of
// each (src, dst) pair of 2MB-aligned, 2MB-sized guest-physical ranges.
// batched=false models the pre-batching design: one hypercall per pair.
// It returns the modeled hypervisor nanoseconds.
func (vm *VM) ExchangeGPAs(pairs [][2]uint64, batched bool) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var ns float64
	if batched {
		// Up to 512 pairs per hypercall: two pre-defined shared 4KB pages
		// hold the source and target gPA lists (§6).
		batches := (len(pairs) + 511) / 512
		vm.S.Hypercalls += uint64(batches)
		ns += float64(batches) * perfmodel.HypercallNs
		ns += float64(len(pairs)) * perfmodel.ExchangeBatchedNs
	} else {
		vm.S.Hypercalls += uint64(len(pairs))
		ns += float64(len(pairs)) * (perfmodel.HypercallNs + perfmodel.ExchangeUnbatchedNs)
	}
	for _, p := range pairs {
		if err := vm.exchangeOne(p[0], p[1]); err != nil {
			vm.S.ExchangeFailures++
			// Guest falls back to copying this pair.
			ns += perfmodel.CopyNs(units.Page2M)
			continue
		}
		vm.S.PagesExchanged++
	}
	vm.S.Nanoseconds += ns
	return ns
}

// exchangeOne swaps the host frames behind two 2MB gPA ranges, demoting
// host mappings to a common granularity first.
func (vm *VM) exchangeOne(src, dst uint64) error {
	if !units.IsAligned(src, units.Page2M) || !units.IsAligned(dst, units.Page2M) {
		return fmt.Errorf("virt: misaligned exchange %#x↔%#x", src, dst)
	}
	gs, err := vm.granularity2M(src)
	if err != nil {
		return err
	}
	gd, err := vm.granularity2M(dst)
	if err != nil {
		return err
	}
	// Mixed granularity: split the 2MB side down to 4KB to match.
	if gs != gd {
		coarse := src
		if gd == units.Size2M {
			coarse = dst
		}
		if err := vm.Host.DemotePage(vm.HostTask, coarse); err != nil {
			return err
		}
		vm.S.HostDemotions++
		gs = units.Size4K
	}
	step := gs.Bytes()
	for off := uint64(0); off < units.Page2M; off += step {
		if err := vm.Host.ExchangeFrames(vm.HostTask, src+off, vm.HostTask, dst+off, gs); err != nil {
			return err
		}
	}
	return nil
}

// granularity2M ensures the 2MB gPA range at base is mapped at 2MB or 4KB
// granularity (demoting a covering 1GB mapping) and returns that
// granularity.
func (vm *VM) granularity2M(base uint64) (units.PageSize, error) {
	m, ok := vm.HostPT().Lookup(base)
	if !ok {
		return 0, fmt.Errorf("virt: gPA %#x not backed", base)
	}
	if m.Size == units.Size1G {
		if err := vm.Host.DemotePage(vm.HostTask, m.VA); err != nil {
			return 0, err
		}
		vm.S.HostDemotions++
		m, ok = vm.HostPT().Lookup(base)
		if !ok {
			return 0, fmt.Errorf("virt: gPA %#x lost after demotion", base)
		}
	}
	if m.Size == units.Size2M && m.VA != base {
		return 0, fmt.Errorf("virt: gPA %#x not 2MB-aligned in host table", base)
	}
	return m.Size, nil
}

// AttachPvExchange wires a guest promotion daemon's exchange events to this
// VM's hypercall, buffering pairs so a 1GB promotion's 512 exchanges travel
// in one (or per-page, if unbatched) hypercall. If the daemon uses smart
// compaction, its 2MB-granule moves become copy-less too (§6 applies the
// same hypercall to guest compaction). Call Flush after each promotion
// pass.
func (vm *VM) AttachPvExchange(d *promote.Daemon, batched bool) *PvBridge {
	b := &PvBridge{vm: vm, batched: batched}
	d.OnExchange = func(src, dst uint64) { b.pairs = append(b.pairs, [2]uint64{src, dst}) }
	if batched {
		d.Move = promote.MovePvBatched
	} else {
		d.Move = promote.MovePvUnbatched
	}
	if d.Smart != nil {
		d.Smart.OnPvMove = func(src, dst uint64) { b.pairs = append(b.pairs, [2]uint64{src, dst}) }
	}
	return b
}

// PvBridge buffers exchange requests between guest promotion and the
// hypervisor.
type PvBridge struct {
	vm      *VM
	batched bool
	pairs   [][2]uint64
}

// Flush issues the buffered exchanges as hypercalls, returning modeled ns.
func (b *PvBridge) Flush() float64 {
	ns := b.vm.ExchangeGPAs(b.pairs, b.batched)
	b.pairs = b.pairs[:0]
	return ns
}

// Pending returns the number of buffered exchange pairs.
func (b *PvBridge) Pending() int { return len(b.pairs) }
