package virt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/mmu"
	"repro/internal/pagetable"
	"repro/internal/promote"
	"repro/internal/tlb"
	"repro/internal/units"
	"repro/internal/vmm"
	"repro/internal/zerofill"
)

// newVM builds a host with Trident backing and a 2GB guest.
func newVM(t *testing.T, hostGB, guestGB uint64, hostPolicy func(*kernel.Kernel) fault.Policy) (*kernel.Kernel, *VM) {
	t.Helper()
	host := kernel.New(hostGB*units.Page1G, units.TridentMaxOrder)
	vm, err := New(host, hostPolicy(host), guestGB*units.Page1G, units.TridentMaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	return host, vm
}

func tridentPolicy(k *kernel.Kernel) fault.Policy {
	z := zerofill.New(k)
	z.Refill(1 << 20)
	return fault.NewTrident(k, z)
}

func thpPolicy(k *kernel.Kernel) fault.Policy { return fault.NewTHP(k) }

func TestNewVMBacksAllGuestMemory(t *testing.T) {
	_, vm := newVM(t, 4, 2, tridentPolicy)
	if got := vm.HostPT().TotalMappedBytes(); got != 2*units.Page1G {
		t.Errorf("backed bytes = %d", got)
	}
	// Trident host backs with 1GB pages.
	if got := vm.HostPT().MappedPages(units.Size1G); got != 2 {
		t.Errorf("host 1GB pages = %d", got)
	}
	if vm.Guest.Mem.Bytes() != 2*units.Page1G {
		t.Error("guest kernel size wrong")
	}
}

func TestNewVMWithTHPHost(t *testing.T) {
	_, vm := newVM(t, 4, 2, thpPolicy)
	if got := vm.HostPT().MappedPages(units.Size2M); got != 1024 {
		t.Errorf("host 2MB pages = %d", got)
	}
}

func TestNestedTranslationThroughVM(t *testing.T) {
	_, vm := newVM(t, 4, 2, tridentPolicy)
	// Guest task maps a 2MB page at gVA.
	gt := vm.Guest.NewTask("app")
	gva, _ := gt.AS.MMapAligned(units.Page2M, units.Page2M, vmm.KindAnon)
	thp := fault.NewTHP(vm.Guest)
	if _, err := thp.Handle(gt, gva); err != nil {
		t.Fatal(err)
	}
	m := mmu.NewNested(tlb.Skylake())
	if !m.TranslateNested(gt.AS.PT, vm.HostPT(), gva, false) {
		t.Fatal("nested translation failed")
	}
	// Effective size = min(guest 2MB, host 1GB) = 2MB.
	if m.BySize[units.Size2M].Accesses != 1 {
		t.Error("effective size not 2MB")
	}
}

func TestExchangeSwapsHostFrames(t *testing.T) {
	_, vm := newVM(t, 4, 2, thpPolicy) // host 2MB granularity: no demotion needed
	src, dst := uint64(0), uint64(units.Page1G)
	before1, _ := vm.HostPT().Lookup(src)
	before2, _ := vm.HostPT().Lookup(dst)
	ns := vm.ExchangeGPAs([][2]uint64{{src, dst}}, true)
	if ns <= 0 {
		t.Error("no time modeled")
	}
	after1, _ := vm.HostPT().Lookup(src)
	after2, _ := vm.HostPT().Lookup(dst)
	if after1.PFN != before2.PFN || after2.PFN != before1.PFN {
		t.Errorf("frames not swapped: %d,%d -> %d,%d",
			before1.PFN, before2.PFN, after1.PFN, after2.PFN)
	}
	if vm.S.PagesExchanged != 1 || vm.S.Hypercalls != 1 || vm.S.HostDemotions != 0 {
		t.Errorf("stats = %+v", vm.S)
	}
}

func TestExchangeDemotesHost1G(t *testing.T) {
	_, vm := newVM(t, 4, 2, tridentPolicy) // host 1GB pages
	ns := vm.ExchangeGPAs([][2]uint64{{0, units.Page1G}}, true)
	if ns <= 0 {
		t.Fatal("exchange failed outright")
	}
	if vm.S.HostDemotions != 2 {
		t.Errorf("host demotions = %d, want 2", vm.S.HostDemotions)
	}
	if vm.S.PagesExchanged != 1 {
		t.Errorf("exchanged = %d", vm.S.PagesExchanged)
	}
	// Host granularity at those gPAs is now 2MB.
	if m, _ := vm.HostPT().Lookup(0); m.Size != units.Size2M {
		t.Errorf("host mapping after demotion = %v", m.Size)
	}
}

func TestExchangeBatchingCosts(t *testing.T) {
	pairs := make([][2]uint64, 512)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i) * units.Page2M, units.Page1G + uint64(i)*units.Page2M}
	}
	_, vmB := newVM(t, 4, 2, thpPolicy)
	nsBatched := vmB.ExchangeGPAs(pairs, true)
	if vmB.S.Hypercalls != 1 {
		t.Errorf("batched hypercalls = %d, want 1", vmB.S.Hypercalls)
	}
	_, vmU := newVM(t, 4, 2, thpPolicy)
	nsUnbatched := vmU.ExchangeGPAs(pairs, false)
	if vmU.S.Hypercalls != 512 {
		t.Errorf("unbatched hypercalls = %d, want 512", vmU.S.Hypercalls)
	}
	// §6: batched ≈ 500µs, unbatched < 30ms, copy ≈ 600ms.
	if us := nsBatched / 1e3; us < 400 || us > 650 {
		t.Errorf("batched 512 exchanges = %v µs, want ≈500", us)
	}
	if ms := nsUnbatched / 1e6; ms < 20 || ms > 31 {
		t.Errorf("unbatched 512 exchanges = %v ms, want <30 and plausible", ms)
	}
}

func TestExchangeMisalignedFails(t *testing.T) {
	_, vm := newVM(t, 4, 2, thpPolicy)
	vm.ExchangeGPAs([][2]uint64{{units.Page4K, units.Page1G}}, true)
	if vm.S.ExchangeFailures != 1 {
		t.Errorf("failures = %d", vm.S.ExchangeFailures)
	}
}

func TestPvBridgeEndToEnd(t *testing.T) {
	// Guest promotes 512×2MB → 1GB with pv exchange; the host frames
	// must actually move.
	_, vm := newVM(t, 4, 2, thpPolicy)
	gt := vm.Guest.NewTask("app")
	gva, _ := gt.AS.MMapAligned(units.Page1G, units.Page1G, vmm.KindAnon)
	thp := fault.NewTHP(vm.Guest)
	for i := uint64(0); i < 512; i++ {
		if _, err := thp.Handle(gt, gva+i*units.Page2M); err != nil {
			t.Fatal(err)
		}
	}
	zero := zerofill.New(vm.Guest)
	d := promote.NewTrident(vm.Guest, zero)
	bridge := vm.AttachPvExchange(d, true)
	d.ScanTask(gt, 0)
	if bridge.Pending() != 512 {
		t.Fatalf("pending exchanges = %d, want 512", bridge.Pending())
	}
	bridge.Flush()
	if vm.S.PagesExchanged != 512 {
		t.Errorf("exchanged = %d", vm.S.PagesExchanged)
	}
	if vm.S.Hypercalls != 1 {
		t.Errorf("hypercalls = %d, want 1 (batched)", vm.S.Hypercalls)
	}
	// Guest sees a 1GB page.
	if m, ok := gt.AS.PT.Lookup(gva); !ok || m.Size != units.Size1G {
		t.Error("guest 1GB mapping missing after pv promotion")
	}
	if bridge.Pending() != 0 {
		t.Error("bridge not drained")
	}
}

func TestGuestFaultPoliciesWorkInsideVM(t *testing.T) {
	_, vm := newVM(t, 6, 4, tridentPolicy)
	gt := vm.Guest.NewTask("app")
	gz := zerofill.New(vm.Guest)
	gz.Refill(100)
	gp := fault.NewTrident(vm.Guest, gz)
	gva, _ := gt.AS.MMapAligned(2*units.Page1G, units.Page1G, vmm.KindAnon)
	r, err := gp.Handle(gt, gva)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != units.Size1G {
		t.Errorf("guest Trident fault size = %v", r.Size)
	}
	// Nested walk for that page costs 8 accesses (1GB+1GB).
	if got := pagetable.NestedWalkAccesses(units.Size1G, units.Size1G); got != 8 {
		t.Errorf("nested 1G+1G = %d", got)
	}
}

func TestNewVMValidation(t *testing.T) {
	host := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	if _, err := New(host, thpPolicy(host), units.Page2M, units.TridentMaxOrder); err == nil {
		t.Error("non-1GB-multiple guest accepted")
	}
}

func TestPvCompactionExchanges(t *testing.T) {
	// §6: the same hypercall also makes guest compaction copy-less. Build a
	// guest where 1GB promotion requires smart compaction moving 2MB pages.
	_, vm := newVM(t, 8, 4, thpPolicy)
	gt := vm.Guest.NewTask("app")
	gva, _ := gt.AS.MMapAligned(units.Page1G, units.Page1G, vmm.KindAnon)
	thp := fault.NewTHP(vm.Guest)
	for i := uint64(0); i < 512; i++ {
		if _, err := thp.Handle(gt, gva+i*units.Page2M); err != nil {
			t.Fatal(err)
		}
	}
	// Fill the rest of guest memory so no free 1GB chunk exists, leaving
	// 2MB-aligned holes in one region for compaction targets.
	filler := vm.Guest.NewTask("filler")
	fva, _ := filler.AS.MMap(3*units.Page1G, vmm.KindAnon)
	for r := uint64(1); r < 4; r++ {
		for b := uint64(0); b < 512; b += 2 {
			pfn := r*units.FramesPerRegion + b*512
			if vm.Guest.Mem.IsAllocated(pfn) {
				continue
			}
			if err := vm.Guest.Buddy.AllocSpecific(pfn, units.Order2M, false); err != nil {
				continue
			}
			if err := vm.Guest.MapSpecific(filler, fva, pfn, units.Size2M); err != nil {
				t.Fatal(err)
			}
			fva += units.Page2M
		}
	}
	if vm.Guest.Buddy.FreeChunks(units.Order1G) != 0 {
		t.Skip("setup left a free 1GB chunk")
	}
	d := promote.NewTrident(vm.Guest, zerofill.New(vm.Guest))
	bridge := vm.AttachPvExchange(d, true)
	d.ScanTask(gt, 0)
	bridge.Flush()
	if d.Smart.PagesExchanged == 0 {
		t.Fatalf("smart compaction exchanged nothing: %+v", d.Smart.Stats)
	}
	if d.Smart.BytesCopied != 0 {
		t.Errorf("smart compaction still copied %d bytes for 2MB moves", d.Smart.BytesCopied)
	}
	if vm.S.PagesExchanged == 0 {
		t.Error("hypervisor saw no exchanges")
	}
}
