// Package vmm manages virtual address spaces: VMAs (virtual memory areas),
// a first-fit VA allocator whose holes model virtual-address fragmentation,
// and the 1GB/2MB mappability analysis of the paper's §4.3.
//
// A virtual address range is mappable by a large page only if it is at least
// as long as the page and aligned to the page's boundary; applications that
// allocate, de-allocate and re-allocate memory (e.g. Graph500) fragment
// their address space and lose 1GB-mappability while remaining 2MB-mappable
// — the gap plotted in Figure 3.
package vmm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/pagetable"
	"repro/internal/units"
)

// Kind classifies a VMA.
type Kind int

// VMA kinds. Stack VMAs matter because libHugetlbfs cannot back a stack
// with large pages, while THP/Trident can (§4.1, the Redis observation).
const (
	KindAnon Kind = iota
	KindStack
)

func (k Kind) String() string {
	if k == KindStack {
		return "stack"
	}
	return "anon"
}

// VMA is one contiguous virtual memory area.
type VMA struct {
	Start uint64 // inclusive
	End   uint64 // exclusive
	Kind  Kind
}

// Size returns the VMA's length in bytes.
func (v VMA) Size() uint64 { return v.End - v.Start }

// Layout constants for user address spaces.
const (
	// MmapBase is where anonymous mappings start.
	MmapBase = uint64(64) * units.GiB
	// MmapLimit is the exclusive upper bound for anonymous mappings.
	MmapLimit = pagetable.MaxVA - units.GiB
	// StackTop is the highest stack address (stacks grow down from here).
	StackTop = pagetable.MaxVA - units.Page2M
)

// Errors returned by address-space operations.
var (
	ErrNoVirtualSpace = errors.New("vmm: no virtual address range available")
	ErrBadUnmap       = errors.New("vmm: unmap range does not match a mapped area")
)

// AddressSpace is one process's (or one guest's) virtual address space.
type AddressSpace struct {
	// ID identifies this space in phys.Owner records; assigned by the kernel.
	ID uint32
	// PT is the space's page table.
	PT *pagetable.Table

	vmas []VMA // sorted by Start, non-overlapping
	// lastFind remembers which VMA the previous FindVMA returned. Faults
	// cluster, so that VMA is checked before the binary search; a hit is
	// always correct even across mutations, since any current VMA that
	// contains va is — by non-overlap — the VMA containing va.
	lastFind int
	// nextHint implements the bump-then-first-fit allocation policy.
	nextHint uint64
}

// NewAddressSpace creates an empty address space with the given ID.
func NewAddressSpace(id uint32) *AddressSpace {
	return &AddressSpace{ID: id, PT: pagetable.New(), nextHint: MmapBase}
}

// Reset returns the address space to its post-NewAddressSpace state —
// empty VMA list, hint at MmapBase, empty page table — while keeping the
// page table's reclaimed node pools warm. The caller assigns a fresh ID
// before reuse (the kernel's task pool does). A reset space is observably
// identical to a fresh one.
func (as *AddressSpace) Reset() {
	as.PT.Reset()
	as.vmas = as.vmas[:0]
	as.nextHint = MmapBase
}

// VMAs returns a copy of the current VMA list, sorted by start address.
func (as *AddressSpace) VMAs() []VMA { return append([]VMA(nil), as.vmas...) }

// TotalVMABytes returns the total size of all VMAs.
func (as *AddressSpace) TotalVMABytes() uint64 {
	var sum uint64
	for _, v := range as.vmas {
		sum += v.Size()
	}
	return sum
}

// MMap reserves size bytes (4KB-multiple) of virtual address space and
// returns the start address. Like Linux, it first tries to extend past the
// previous mapping (keeping the address space dense and large-page friendly
// for applications that allocate in big chunks) and falls back to first-fit
// in earlier holes — which is how re-allocation after frees produces the
// virtual fragmentation of Figure 3.
func (as *AddressSpace) MMap(size uint64, kind Kind) (uint64, error) {
	if size == 0 || size%units.Page4K != 0 {
		return 0, fmt.Errorf("vmm: mmap size %d not a positive 4KB multiple", size)
	}
	if va, ok := as.fit(as.nextHint, MmapLimit, size); ok {
		as.insert(VMA{va, va + size, kind})
		as.nextHint = va + size
		return va, nil
	}
	if va, ok := as.fit(MmapBase, MmapLimit, size); ok {
		as.insert(VMA{va, va + size, kind})
		return va, nil
	}
	return 0, ErrNoVirtualSpace
}

// MMapAligned is MMap with a stronger alignment guarantee for the start
// address (used by workload models that pre-allocate huge-page-friendly
// arenas, mimicking allocators that mmap aligned segments).
func (as *AddressSpace) MMapAligned(size, align uint64, kind Kind) (uint64, error) {
	if size == 0 || size%units.Page4K != 0 || align == 0 || align%units.Page4K != 0 {
		return 0, fmt.Errorf("vmm: bad aligned mmap size=%d align=%d", size, align)
	}
	hint := units.AlignUp(as.nextHint, align)
	if va, ok := as.fitAligned(hint, MmapLimit, size, align); ok {
		as.insert(VMA{va, va + size, kind})
		as.nextHint = va + size
		return va, nil
	}
	if va, ok := as.fitAligned(MmapBase, MmapLimit, size, align); ok {
		as.insert(VMA{va, va + size, kind})
		return va, nil
	}
	return 0, ErrNoVirtualSpace
}

// MMapFixed creates a VMA at an exact address (MAP_FIXED). The hypervisor
// layer uses it to give a VM's host-side task a VMA whose virtual addresses
// are the guest-physical addresses.
func (as *AddressSpace) MMapFixed(start, size uint64, kind Kind) error {
	if size == 0 || size%units.Page4K != 0 || start%units.Page4K != 0 {
		return fmt.Errorf("vmm: bad fixed mmap start=%#x size=%d", start, size)
	}
	if start+size > pagetable.MaxVA {
		return ErrNoVirtualSpace
	}
	if as.overlapsAny(start, start+size) {
		return ErrNoVirtualSpace
	}
	as.insert(VMA{start, start + size, kind})
	return nil
}

// MMapStack creates the stack VMA just below StackTop.
func (as *AddressSpace) MMapStack(size uint64) (uint64, error) {
	if size == 0 || size%units.Page4K != 0 {
		return 0, fmt.Errorf("vmm: bad stack size %d", size)
	}
	start := StackTop - size
	if as.overlapsAny(start, StackTop) {
		return 0, ErrNoVirtualSpace
	}
	as.insert(VMA{start, StackTop, KindStack})
	return start, nil
}

// MUnmap removes [va, va+size) from the VMA list, splitting VMAs as needed.
// All leaf mappings in the range must have been unmapped from the page
// table by the caller (the kernel layer does this, releasing frames).
func (as *AddressSpace) MUnmap(va, size uint64) error {
	if size == 0 || size%units.Page4K != 0 || va%units.Page4K != 0 {
		return fmt.Errorf("vmm: bad munmap va=%#x size=%d", va, size)
	}
	end := va + size
	covered := uint64(0)
	for _, v := range as.vmas {
		lo, hi := max64(v.Start, va), min64(v.End, end)
		if lo < hi {
			covered += hi - lo
		}
	}
	if covered != size {
		return ErrBadUnmap
	}
	var out []VMA
	for _, v := range as.vmas {
		if v.End <= va || v.Start >= end {
			out = append(out, v)
			continue
		}
		if v.Start < va {
			out = append(out, VMA{v.Start, va, v.Kind})
		}
		if v.End > end {
			out = append(out, VMA{end, v.End, v.Kind})
		}
	}
	as.vmas = out
	return nil
}

// FindVMA returns the VMA containing va.
func (as *AddressSpace) FindVMA(va uint64) (VMA, bool) {
	if j := as.lastFind; j < len(as.vmas) {
		if v := as.vmas[j]; v.Start <= va && va < v.End {
			return v, true
		}
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > va })
	if i < len(as.vmas) && as.vmas[i].Start <= va {
		as.lastFind = i
		return as.vmas[i], true
	}
	return VMA{}, false
}

// MappableBytes returns the number of allocated virtual bytes that are
// mappable with pages of the given size: the sum over VMAs of the aligned
// spans fully contained in each VMA. For Size4K this is simply the total
// VMA bytes. This is the quantity plotted in Figure 3.
func (as *AddressSpace) MappableBytes(size units.PageSize) uint64 {
	if size == units.Size4K {
		return as.TotalVMABytes()
	}
	ps := size.Bytes()
	var sum uint64
	for _, v := range as.vmas {
		lo := units.AlignUp(v.Start, ps)
		hi := units.Align(v.End, ps)
		if hi > lo {
			sum += hi - lo
		}
	}
	return sum
}

// ForEachAligned visits the start address of every size-aligned page-sized
// span fully contained in a VMA, in ascending order. fn returning false
// stops the iteration.
func (as *AddressSpace) ForEachAligned(size units.PageSize, fn func(va uint64, kind Kind) bool) {
	ps := size.Bytes()
	for _, v := range as.vmas {
		lo := units.AlignUp(v.Start, ps)
		hi := units.Align(v.End, ps)
		for va := lo; va < hi; va += ps {
			if !fn(va, v.Kind) {
				return
			}
		}
	}
}

// AlignedRangeAt returns the start of the size-aligned span containing va if
// that whole span lies within a single VMA — the page-fault handler's test
// for "is this fault in a 1GB-mappable (or 2MB-mappable) range" (§5.1.2).
func (as *AddressSpace) AlignedRangeAt(va uint64, size units.PageSize) (uint64, bool) {
	v, ok := as.FindVMA(va)
	if !ok {
		return 0, false
	}
	start := units.Align(va, size.Bytes())
	if start >= v.Start && start+size.Bytes() <= v.End {
		return start, true
	}
	return 0, false
}

func (as *AddressSpace) fit(from, to, size uint64) (uint64, bool) {
	return as.fitAligned(from, to, size, units.Page4K)
}

// fitAligned finds the lowest aligned gap of at least size bytes in
// [from, to) not overlapping any VMA.
func (as *AddressSpace) fitAligned(from, to, size, align uint64) (uint64, bool) {
	pos := units.AlignUp(from, align)
	for _, v := range as.vmas {
		if v.End <= pos {
			continue
		}
		if v.Start >= to {
			break
		}
		if v.Start >= pos+size {
			return pos, true
		}
		if v.End > pos {
			pos = units.AlignUp(v.End, align)
		}
	}
	if pos+size <= to {
		return pos, true
	}
	return 0, false
}

func (as *AddressSpace) overlapsAny(lo, hi uint64) bool {
	for _, v := range as.vmas {
		if v.Start < hi && lo < v.End {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insert(nv VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= nv.Start })
	as.vmas = append(as.vmas, VMA{})
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = nv
	// Merge with identical-kind neighbours to mimic Linux VMA merging, which
	// is what makes a sequence of adjacent mmaps 1GB-mappable.
	as.mergeAround(i)
}

func (as *AddressSpace) mergeAround(i int) {
	// Merge with next.
	if i+1 < len(as.vmas) && as.vmas[i].End == as.vmas[i+1].Start && as.vmas[i].Kind == as.vmas[i+1].Kind {
		as.vmas[i].End = as.vmas[i+1].End
		as.vmas = append(as.vmas[:i+1], as.vmas[i+2:]...)
	}
	// Merge with previous.
	if i > 0 && as.vmas[i-1].End == as.vmas[i].Start && as.vmas[i-1].Kind == as.vmas[i].Kind {
		as.vmas[i-1].End = as.vmas[i].End
		as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
