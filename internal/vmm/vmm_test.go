package vmm

import (
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

func TestMMapBasics(t *testing.T) {
	as := NewAddressSpace(1)
	va, err := as.MMap(16*units.Page4K, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if va != MmapBase {
		t.Errorf("first mmap at %#x, want %#x", va, MmapBase)
	}
	if as.TotalVMABytes() != 16*units.Page4K {
		t.Errorf("TotalVMABytes = %d", as.TotalVMABytes())
	}
	v, ok := as.FindVMA(va + units.Page4K)
	if !ok || v.Start != va {
		t.Errorf("FindVMA = %+v, %v", v, ok)
	}
	if _, ok := as.FindVMA(va - 1); ok {
		t.Error("FindVMA hit before mapping")
	}
}

func TestMMapValidation(t *testing.T) {
	as := NewAddressSpace(1)
	if _, err := as.MMap(0, KindAnon); err == nil {
		t.Error("zero-size mmap succeeded")
	}
	if _, err := as.MMap(123, KindAnon); err == nil {
		t.Error("unaligned mmap succeeded")
	}
	if _, err := as.MMapAligned(units.Page4K, 100, KindAnon); err == nil {
		t.Error("bad alignment accepted")
	}
}

func TestAdjacentMMapsMerge(t *testing.T) {
	as := NewAddressSpace(1)
	a, _ := as.MMap(units.Page2M, KindAnon)
	b, _ := as.MMap(units.Page2M, KindAnon)
	if b != a+units.Page2M {
		t.Fatalf("second mmap not adjacent: %#x vs %#x", a, b)
	}
	if n := len(as.VMAs()); n != 1 {
		t.Errorf("adjacent anon VMAs did not merge: %d VMAs", n)
	}
}

func TestStackDoesNotMergeWithAnon(t *testing.T) {
	as := NewAddressSpace(1)
	if _, err := as.MMapStack(units.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MMapStack(units.Page2M); err == nil {
		t.Error("second stack over the first succeeded")
	}
	vmas := as.VMAs()
	if len(vmas) != 1 || vmas[0].Kind != KindStack {
		t.Errorf("stack VMA list = %+v", vmas)
	}
	if vmas[0].End != StackTop {
		t.Errorf("stack end = %#x", vmas[0].End)
	}
}

func TestMUnmapSplitsVMA(t *testing.T) {
	as := NewAddressSpace(1)
	va, _ := as.MMap(units.Page2M, KindAnon)
	mid := va + 100*units.Page4K
	if err := as.MUnmap(mid, 4*units.Page4K); err != nil {
		t.Fatal(err)
	}
	if n := len(as.VMAs()); n != 2 {
		t.Fatalf("split produced %d VMAs", n)
	}
	if _, ok := as.FindVMA(mid); ok {
		t.Error("unmapped address still in a VMA")
	}
	if as.TotalVMABytes() != units.Page2M-4*units.Page4K {
		t.Errorf("TotalVMABytes = %d", as.TotalVMABytes())
	}
}

func TestMUnmapExactVMA(t *testing.T) {
	as := NewAddressSpace(1)
	va, _ := as.MMap(8*units.Page4K, KindAnon)
	if err := as.MUnmap(va, 8*units.Page4K); err != nil {
		t.Fatal(err)
	}
	if len(as.VMAs()) != 0 {
		t.Error("VMA not removed")
	}
}

func TestMUnmapUnmappedFails(t *testing.T) {
	as := NewAddressSpace(1)
	if err := as.MUnmap(MmapBase, units.Page4K); err != ErrBadUnmap {
		t.Errorf("unmap of nothing: %v", err)
	}
	va, _ := as.MMap(4*units.Page4K, KindAnon)
	// Partially covered range must also fail.
	if err := as.MUnmap(va, 8*units.Page4K); err != ErrBadUnmap {
		t.Errorf("partial unmap: %v", err)
	}
}

func TestHoleReuseFirstFit(t *testing.T) {
	as := NewAddressSpace(1)
	a, _ := as.MMap(units.Page2M, KindAnon)
	as.MMap(units.Page2M, KindAnon)
	if err := as.MUnmap(a, units.Page2M); err != nil {
		t.Fatal(err)
	}
	// Exhaust the bump hint path by requesting after frees; first-fit should
	// reuse the hole at a for a same-size request once the hint path is
	// preferred... the hint continues upward, so force fallback with a huge
	// request first? Simpler: new small mmap still goes to hint; verify the
	// hole is reused when we map exactly into the fallback region.
	c, _ := as.MMap(units.Page2M, KindAnon)
	if c == a {
		t.Skip("allocator reused hole immediately; acceptable policy")
	}
	// Now fill remaining space via fallback: the hole at a remains usable.
	d, err := as.MMapAligned(units.Page2M, units.Page2M, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
}

func TestMMapAlignedAlignment(t *testing.T) {
	as := NewAddressSpace(1)
	as.MMap(units.Page4K, KindAnon) // misalign the hint
	va, err := as.MMapAligned(units.Page1G, units.Page1G, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if !units.IsAligned(va, units.Page1G) {
		t.Errorf("aligned mmap returned %#x", va)
	}
}

func TestMappableBytes(t *testing.T) {
	as := NewAddressSpace(1)
	// One VMA of exactly 3GB, 1GB-aligned.
	va, err := as.MMapAligned(3*units.Page1G, units.Page1G, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.MappableBytes(units.Size1G); got != 3*units.Page1G {
		t.Errorf("1GB-mappable = %d", got)
	}
	if got := as.MappableBytes(units.Size2M); got != 3*units.Page1G {
		t.Errorf("2MB-mappable = %d", got)
	}
	// Punch a 4KB hole in the middle of the second GB: that GB loses
	// 1GB-mappability entirely, and loses only ~2MB of 2MB-mappability.
	if err := as.MUnmap(va+units.Page1G+500*units.Page2M, units.Page4K); err != nil {
		t.Fatal(err)
	}
	if got := as.MappableBytes(units.Size1G); got != 2*units.Page1G {
		t.Errorf("1GB-mappable after hole = %d", got)
	}
	got2M := as.MappableBytes(units.Size2M)
	if got2M != 3*units.Page1G-units.Page2M {
		t.Errorf("2MB-mappable after hole = %d (lost %d)", got2M, 3*units.Page1G-got2M)
	}
	// 4KB mappability is just total VMA bytes.
	if got := as.MappableBytes(units.Size4K); got != as.TotalVMABytes() {
		t.Error("4KB mappability != total VMA bytes")
	}
}

func TestMappableBytesUnalignedVMA(t *testing.T) {
	as := NewAddressSpace(1)
	// 1GB+4KB VMA that is NOT 1GB-aligned: no 1GB-mappable spans if the
	// aligned 1GB span doesn't fit.
	va, _ := as.MMap(2*units.Page4K, KindAnon) // push hint off alignment
	// Leave a hole so the next VMA cannot merge with this one.
	if err := as.MUnmap(va+units.Page4K, units.Page4K); err != nil {
		t.Fatal(err)
	}
	v2, _ := as.MMap(units.Page1G, KindAnon)
	if units.IsAligned(v2, units.Page1G) {
		t.Skip("layout happened to align; adjust test")
	}
	if got := as.MappableBytes(units.Size1G); got != 0 {
		t.Errorf("unaligned VMA reported %d 1GB-mappable bytes", got)
	}
}

func TestForEachAligned(t *testing.T) {
	as := NewAddressSpace(1)
	if _, err := as.MMapAligned(2*units.Page1G, units.Page1G, KindAnon); err != nil {
		t.Fatal(err)
	}
	var starts []uint64
	as.ForEachAligned(units.Size1G, func(va uint64, kind Kind) bool {
		starts = append(starts, va)
		return true
	})
	if len(starts) != 2 {
		t.Fatalf("visited %d 1GB spans, want 2", len(starts))
	}
	if starts[1] != starts[0]+units.Page1G {
		t.Error("spans not consecutive")
	}
	// Early stop.
	n := 0
	as.ForEachAligned(units.Size2M, func(va uint64, kind Kind) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestAlignedRangeAt(t *testing.T) {
	as := NewAddressSpace(1)
	va, err := as.MMapAligned(units.Page1G, units.Page1G, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	start, ok := as.AlignedRangeAt(va+123*units.Page2M, units.Size1G)
	if !ok || start != va {
		t.Errorf("AlignedRangeAt(1G) = %#x, %v", start, ok)
	}
	start, ok = as.AlignedRangeAt(va+123*units.Page2M+5, units.Size2M)
	if !ok || start != va+123*units.Page2M {
		t.Errorf("AlignedRangeAt(2M) = %#x, %v", start, ok)
	}
	if _, ok := as.AlignedRangeAt(va-1, units.Size4K); ok {
		t.Error("AlignedRangeAt outside VMA succeeded")
	}
}

func TestAlignedRangeAtCrossingVMAEdge(t *testing.T) {
	as := NewAddressSpace(1)
	// VMA covering half a 1GB-aligned span: the span is not fully inside.
	va, err := as.MMapAligned(units.Page1G/2, units.Page1G, KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := as.AlignedRangeAt(va, units.Size1G); ok {
		t.Error("1GB range reported inside a 512MB VMA")
	}
	if _, ok := as.AlignedRangeAt(va, units.Size2M); !ok {
		t.Error("2MB range should fit")
	}
}

// Virtual fragmentation property (Figure 3's mechanism): random
// alloc/free/realloc cycles must strictly reduce 1GB-mappability relative to
// 2MB-mappability.
func TestFragmentationReducesGBMappability(t *testing.T) {
	as := NewAddressSpace(1)
	rng := xrand.New(7)
	type region struct {
		va, size uint64
	}
	var live []region
	// Allocate ~12GB in 64MB pieces, then randomly free/realloc.
	for i := 0; i < 192; i++ {
		size := uint64(64 * units.MiB)
		va, err := as.MMap(size, KindAnon)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, region{va, size})
	}
	for step := 0; step < 300; step++ {
		if rng.Bool(0.5) && len(live) > 0 {
			i := rng.Intn(len(live))
			if err := as.MUnmap(live[i].va, live[i].size); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			size := uint64(rng.Intn(16)+1) * 4 * units.MiB
			va, err := as.MMap(size, KindAnon)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, region{va, size})
		}
	}
	m2 := as.MappableBytes(units.Size2M)
	m1 := as.MappableBytes(units.Size1G)
	if m1 >= m2 {
		t.Errorf("expected 1GB-mappable (%d) < 2MB-mappable (%d) after fragmentation", m1, m2)
	}
	if m2 == 0 {
		t.Error("2MB-mappability collapsed entirely; model too aggressive")
	}
}

func TestVMAsReturnsCopy(t *testing.T) {
	as := NewAddressSpace(1)
	as.MMap(units.Page4K, KindAnon)
	v := as.VMAs()
	v[0].Start = 0xdead000
	if as.VMAs()[0].Start == 0xdead000 {
		t.Error("VMAs exposed internal slice")
	}
}
