package workload

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/stream"
	"repro/internal/units"
)

// BenchmarkInstanceNext measures one access-stream draw — segment selection
// through the flat offset index plus the per-segment pattern — on a
// representative hot/cold workload at test scale.
func BenchmarkInstanceNext(b *testing.B) {
	spec, ok := ByName("XSBench")
	if !ok {
		b.Fatal("unknown workload XSBench")
	}
	k := kernel.New(8*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask("bench")
	inst, err := spec.Instantiate(k, task, fault.NewBase4K(k), 1, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		va, _ := inst.Next()
		sink += va
	}
	_ = sink
}

// BenchmarkNextBatch measures the precompiled batched draw path — the
// producer stage of the batched translation pipeline. Reported per batch of
// 2000 references (the pipeline's batch size), so ns/op ÷ 2000 is the
// steady-state per-draw cost.
func BenchmarkNextBatch(b *testing.B) {
	spec, ok := ByName("GUPS")
	if !ok {
		b.Fatal("unknown workload GUPS")
	}
	k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask("bench")
	inst, err := spec.Instantiate(k, task, fault.NewTHP(k), 42, testScale)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]stream.Access, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.NextBatch(buf)
	}
}

// BenchmarkNextRuns measures the run-coalescing draw path — the producer
// stage of the run-coalesced translation pipeline. Same draws as
// BenchmarkNextBatch plus the per-reference page comparison; uniform
// workloads coalesce almost nothing (runs of length 1), so this bench pins
// the overhead coalescing adds to the draw loop. Reported per batch of
// 2000 references.
func BenchmarkNextRuns(b *testing.B) {
	spec, ok := ByName("GUPS")
	if !ok {
		b.Fatal("unknown workload GUPS")
	}
	k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask("bench")
	inst, err := spec.Instantiate(k, task, fault.NewTHP(k), 42, testScale)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]stream.Run, 0, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.NextRuns(buf, 2000)
	}
}
