package workload

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/units"
)

// BenchmarkInstanceNext measures one access-stream draw — segment selection
// through the flat offset index plus the per-segment pattern — on a
// representative hot/cold workload at test scale.
func BenchmarkInstanceNext(b *testing.B) {
	spec, ok := ByName("XSBench")
	if !ok {
		b.Fatal("unknown workload XSBench")
	}
	k := kernel.New(8*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask("bench")
	inst, err := spec.Instantiate(k, task, fault.NewBase4K(k), 1, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		va, _ := inst.Next()
		sink += va
	}
	_ = sink
}
