// Package workload models the memory behaviour of the paper's 12 Table-2
// applications. What the paper's results depend on — and therefore what
// these models encode — is:
//
//   - the allocation pattern: applications that pre-allocate large aligned
//     arenas (XSBench, GUPS, the GAPBS kernels) are 1GB-mappable at fault
//     time, while incremental allocators (Redis, Memcached, Btree, Canneal)
//     only become 1GB-mappable later, and churning allocators (Graph500,
//     SVM) leave persistent holes that keep parts of the address space
//     2MB-mappable but never 1GB-mappable (Figure 3);
//
//   - the access pattern: the hot-set size relative to TLB reach decides
//     which page size suffices (the shaded eight of Figure 1 have hot sets
//     beyond the 2MB-TLB reach), fringe accesses near the holes produce the
//     Figure-4 miss spikes, and stack accesses matter for Redis/GUPS
//     (§4.1's libHugetlbfs limitation);
//
//   - the performance model: intrinsic cycles per access and the fraction
//     of walk latency the out-of-order core cannot hide (§4.1).
//
// Footprints are scaled ≈÷10 from Table 2 (Btree ÷2.5, see its comment) so
// the default 32GB simulated machine preserves the footprint-to-TLB-reach
// regime of the paper's 384GB testbed; the scale knob shrinks them further
// for tests.
package workload

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/perfmodel"
	"repro/internal/stream"
	"repro/internal/units"
	"repro/internal/vmm"
	"repro/internal/xrand"
)

// AllocPlan describes how an application builds its address space.
type AllocPlan struct {
	// PreallocFrac of the footprint is mmap'd up front in PreallocChunks
	// large 1GB-aligned chunks (arrays allocated at startup).
	PreallocFrac   float64
	PreallocChunks int
	// The rest arrives incrementally in PieceBytes mmaps, each touched
	// immediately (allocation interleaved with use).
	PieceBytes uint64
	// Gaps > 0 scatters that many small unmappable gaps evenly across the
	// incremental pieces (foreign mappings landing between heap chunks),
	// breaking 1GB-mappability at those points. The count is absolute —
	// foreign mappings do not multiply when footprints scale down.
	Gaps int
	// ChurnOps random free+realloc cycles run after allocation, punching
	// the persistent holes of Figure 3 (Graph500-style).
	ChurnOps int
	// StackBytes is the stack size (0 = default 8MB).
	StackBytes uint64
}

// AccessSpec describes the reference stream.
type AccessSpec struct {
	// HotBytes is the window (prefix of the heap, in VA order) receiving
	// the bulk of accesses. 0 means the whole heap is hot.
	HotBytes uint64
	// StackFrac of accesses hit the stack.
	StackFrac float64
	// FringeFrac of accesses hit 2MB-mappable-but-not-1GB-mappable fringe
	// bytes (redistributed to the hot window if no fringe exists). This is
	// the Figure-4 spike.
	FringeFrac float64
	// ColdFrac of accesses are uniform over the entire heap.
	ColdFrac float64
	// WriteFrac of accesses are stores.
	WriteFrac float64
}

// Spec is one application model.
type Spec struct {
	Name string
	// Threads is Table 2's thread count (documentation; the simulator
	// samples one interleaved reference stream).
	Threads int
	// PaperFootprint is Table 2's memory footprint.
	PaperFootprint uint64
	// Footprint is the simulated footprint at scale 1.0.
	Footprint uint64
	Alloc     AllocPlan
	Access    AccessSpec
	Model     perfmodel.WorkloadModel
	// Throughput marks applications whose performance the paper reports as
	// throughput (Redis, Memcached) rather than inverse runtime.
	Throughput bool
	// RequestBaseNs is the intrinsic (queueing/network/processing) p99
	// request latency for throughput workloads, calibrated so the 4KB
	// baseline lands at Table 5's values; translation exposure and fault
	// stalls add to it.
	RequestBaseNs float64
	// RequestInsertBytes is how much new memory each request allocates
	// (key-value stores keep inserting during measurement, so fault stalls
	// land in the latency tail).
	RequestInsertBytes uint64
	// Sensitive1G marks the shaded eight applications that benefit from
	// 1GB pages (Figure 1).
	Sensitive1G bool
}

// All returns the 12 Table-2 workload models, in the paper's figure order:
// the eight 1GB-sensitive applications first.
func All() []*Spec {
	return []*Spec{
		// --- the shaded eight (1GB-sensitive) ---
		{
			Name: "XSBench", Threads: 36,
			PaperFootprint: 117 * units.GiB,
			Footprint:      12 * units.GiB,
			// Monte Carlo particle transport: nuclide grids allocated up
			// front, uniform random lookups across them.
			Alloc:       AllocPlan{PreallocFrac: 1, PreallocChunks: 3},
			Access:      AccessSpec{HotBytes: 8 * units.GiB, ColdFrac: 0.05, WriteFrac: 0.05},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 140, Overlap: 0.13},
			Sensitive1G: true,
		},
		{
			Name: "SVM", Threads: 36,
			PaperFootprint: 679 * units.GiB / 10,
			Footprint:      7 * units.GiB,
			// Dataset arrays pre-allocated; model state grows incrementally.
			Alloc: AllocPlan{
				PreallocFrac: 0.6, PreallocChunks: 1,
				PieceBytes: 8 * units.MiB, Gaps: 2,
			},
			Access:      AccessSpec{HotBytes: 5 * units.GiB, FringeFrac: 0.10, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 100, Overlap: 0.33},
			Sensitive1G: true,
		},
		{
			Name: "Graph500", Threads: 36,
			PaperFootprint: 635 * units.GiB / 10,
			Footprint:      13 * units.GiB / 2,
			// Edge lists pre-allocated, then build/search phases allocate,
			// free and re-allocate — the virtual fragmentation of Figure 3a.
			Alloc: AllocPlan{
				PreallocFrac: 0.75, PreallocChunks: 2,
				PieceBytes: 32 * units.MiB, Gaps: 3, ChurnOps: 120,
			},
			Access:      AccessSpec{HotBytes: 5 * units.GiB, FringeFrac: 0.22, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 110, Overlap: 0.16},
			Sensitive1G: true,
		},
		{
			Name: "GUPS", Threads: 1,
			PaperFootprint: 32 * units.GiB,
			Footprint:      8 * units.GiB,
			// One giant table, uniform random updates; TLB-sensitive stack.
			Alloc:       AllocPlan{PreallocFrac: 1, PreallocChunks: 1},
			Access:      AccessSpec{StackFrac: 0.05, WriteFrac: 0.8},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 68, Overlap: 0.85},
			Sensitive1G: true,
		},
		{
			Name: "Btree", Threads: 1,
			PaperFootprint: 105 * units.GiB / 10,
			// Scaled ÷2.33 rather than ÷10: at ÷10 the tree would fit
			// entirely within the 2MB-TLB reach and lose the paper's
			// 1GB-sensitivity regime.
			Footprint: 9 * units.GiB / 2,
			// The tree grows node by node: incremental, never 1GB-mappable
			// at fault time (Table 3: zero 1GB pages from the fault path).
			Alloc:       AllocPlan{PieceBytes: 4 * units.MiB, Gaps: 1},
			Access:      AccessSpec{HotBytes: 4 * units.GiB, ColdFrac: 0.05, WriteFrac: 0.1},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 80, Overlap: 0.85},
			Sensitive1G: true,
		},
		{
			Name: "Redis", Threads: 1,
			PaperFootprint: 436 * units.GiB / 10,
			Footprint:      9 * units.GiB / 2,
			// Key-value pairs inserted over time: small allocator chunks,
			// plus a TLB-sensitive stack that libHugetlbfs cannot map (§4.1).
			Alloc:              AllocPlan{PieceBytes: 1 * units.MiB, Gaps: 1},
			Access:             AccessSpec{HotBytes: 4 * units.GiB, StackFrac: 0.08, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:              perfmodel.WorkloadModel{BaseCyclesPerAccess: 90, Overlap: 0.25},
			Throughput:         true,
			RequestBaseNs:      46.4e6, // Table 5: 4KB p99 ≈ 47.3 ms
			RequestInsertBytes: 256 * units.KiB,
			Sensitive1G:        true,
		},
		{
			Name: "Memcached", Threads: 36,
			PaperFootprint: 79 * units.GiB,
			Footprint:      8 * units.GiB,
			// Slab allocator: sizable slab mmaps, still incremental.
			Alloc:              AllocPlan{PieceBytes: 64 * units.MiB, Gaps: 2},
			Access:             AccessSpec{HotBytes: 6 * units.GiB, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:              perfmodel.WorkloadModel{BaseCyclesPerAccess: 100, Overlap: 0.14},
			Throughput:         true,
			RequestBaseNs:      1.46e6, // Table 5: 4KB p99 ≈ 1.53 ms
			RequestInsertBytes: 128 * units.KiB,
			Sensitive1G:        true,
		},
		{
			Name: "Canneal", Threads: 1,
			PaperFootprint: 32 * units.GiB,
			Footprint:      7 * units.GiB / 2,
			// Netlist elements allocated individually (glibc arenas), then
			// pointer-chased randomly: almost no locality to hide walks.
			Alloc: AllocPlan{
				PreallocFrac: 0.25, PreallocChunks: 1,
				PieceBytes: 1 * units.MiB,
			},
			Access:      AccessSpec{HotBytes: 7 * units.GiB / 2 * 97 / 100, ColdFrac: 0.03, WriteFrac: 0.2},
			Model:       perfmodel.WorkloadModel{BaseCyclesPerAccess: 32, Overlap: 0.90},
			Sensitive1G: true,
		},
		// --- the four that gain little beyond 2MB ---
		{
			Name: "CC", Threads: 36,
			PaperFootprint: 72 * units.GiB,
			Footprint:      7 * units.GiB,
			// GAPBS: big arrays, but the iteration working set stays within
			// the 2MB-TLB reach.
			Alloc:  AllocPlan{PreallocFrac: 1, PreallocChunks: 4},
			Access: AccessSpec{HotBytes: 22 * units.GiB / 10, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:  perfmodel.WorkloadModel{BaseCyclesPerAccess: 100, Overlap: 0.50},
		},
		{
			Name: "BC", Threads: 36,
			PaperFootprint: 72 * units.GiB,
			Footprint:      7 * units.GiB,
			// Hot set at the edge of the 2MB reach: no native 1GB benefit,
			// slight sensitivity under virtualization (§4.2).
			Alloc:  AllocPlan{PreallocFrac: 1, PreallocChunks: 4},
			Access: AccessSpec{HotBytes: 3 * units.GiB, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:  perfmodel.WorkloadModel{BaseCyclesPerAccess: 100, Overlap: 0.45},
		},
		{
			Name: "PR", Threads: 36,
			PaperFootprint: 72 * units.GiB,
			Footprint:      7 * units.GiB,
			Alloc:          AllocPlan{PreallocFrac: 1, PreallocChunks: 4},
			Access:         AccessSpec{HotBytes: 22 * units.GiB / 10, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:          perfmodel.WorkloadModel{BaseCyclesPerAccess: 110, Overlap: 0.50},
		},
		{
			Name: "CG.D", Threads: 36,
			PaperFootprint: 50 * units.GiB,
			Footprint:      5 * units.GiB,
			// NPB conjugate gradient: strided sweeps with high locality.
			Alloc:  AllocPlan{PreallocFrac: 1, PreallocChunks: 3},
			Access: AccessSpec{HotBytes: 2 * units.GiB, ColdFrac: 0.05, WriteFrac: 0.3},
			Model:  perfmodel.WorkloadModel{BaseCyclesPerAccess: 120, Overlap: 0.40},
		},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (*Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Sensitive returns the shaded eight 1GB-sensitive workloads.
func Sensitive() []*Spec {
	var out []*Spec
	for _, s := range All() {
		if s.Sensitive1G {
			out = append(out, s)
		}
	}
	return out
}

// Instance is a workload instantiated in an address space: its memory is
// allocated and faulted in, and it can generate its reference stream.
type Instance struct {
	Spec *Spec
	K    *kernel.Kernel
	Task *kernel.Task

	StackVA    uint64
	StackBytes uint64

	rng *xrand.Rand

	// Linearized heap segments (ascending VA) with cumulative sizes and a
	// flat offset index for O(1) position→VA mapping.
	heap     segments
	fringe   segments
	hotBytes uint64
	// Hoisted Spec.Access thresholds (see buildSegments): Next runs once per
	// sampled reference, so it reads these instance-local values instead of
	// chasing Spec and re-adding the fraction fields on every draw. The sums
	// are formed in the same left-to-right order Next previously used, so
	// every comparison sees bit-identical values.
	writeFrac    float64
	stackThresh  float64 // StackFrac
	fringeThresh float64 // StackFrac + FringeFrac
	coldThresh   float64 // StackFrac + FringeFrac + ColdFrac
	hasStack     bool
	hasFringe    bool
	// plan holds the compiled draw stream for NextBatch: the rejection
	// bounds of every bounded draw, precomputed once per heap geometry (see
	// refreshPlan) so the batched hot loop is pure splitmix64 arithmetic
	// plus flat lut reads, with no per-draw modulus setup.
	plan drawPlan
	// Faults counts demand faults serviced during population, churn and
	// Extend; FaultNs is their summed synchronous latency. (Table 5's tail
	// latency comes from the request histogram in the simulator, not from
	// here — individual fault latencies had no consumer, and retaining them
	// per fault dominated population's allocations.)
	Faults  uint64
	FaultNs float64
}

type segments struct {
	starts []uint64 // VA of each segment
	cum    []uint64 // cumulative bytes before each segment
	total  uint64

	// lut is a flat offset index: lut[b] is the segment containing byte
	// position b<<lutShift, so at() starts from the right neighbourhood and
	// advances at most the few segments sharing that bucket instead of
	// binary-searching the whole cumulative table on every draw. Rebuilt
	// lazily after add() (segments arrive in batches, draws in millions).
	lut      []int32
	lutShift uint
}

func (s *segments) add(start, size uint64) {
	s.starts = append(s.starts, start)
	s.cum = append(s.cum, s.total)
	s.total += size
	s.lut = nil
}

// buildLut indexes byte positions at a granularity that keeps the table at
// most ~4 entries per segment, bounding both memory and the advance loop.
func (s *segments) buildLut() {
	shift := uint(12)
	for s.total>>shift > uint64(4*len(s.starts)) {
		shift++
	}
	lut := make([]int32, s.total>>shift+1)
	seg := 0
	for b := range lut {
		pos := uint64(b) << shift
		for seg+1 < len(s.cum) && s.cum[seg+1] <= pos {
			seg++
		}
		lut[b] = int32(seg)
	}
	s.lut, s.lutShift = lut, shift
}

// at maps a byte position in [0, total) to a VA. The lookup lands on the
// last segment whose cumulative start is <= pos — the same segment the
// previous sort.Search implementation selected.
func (s *segments) at(pos uint64) uint64 {
	if s.lut == nil {
		s.buildLut()
	}
	i := int(s.lut[pos>>s.lutShift])
	for i+1 < len(s.cum) && s.cum[i+1] <= pos {
		i++
	}
	return s.starts[i] + (pos - s.cum[i])
}

// Instantiate allocates the workload's memory in task's address space,
// faulting every page through policy exactly as first-touch would, and
// returns the ready-to-run instance. scale multiplies the footprint and hot
// set (1.0 = the package defaults; tests use smaller values).
func (s *Spec) Instantiate(k *kernel.Kernel, task *kernel.Task, policy fault.Policy, seed uint64, scale float64) (*Instance, error) {
	return s.InstantiateObserved(k, task, policy, seed, scale, nil)
}

// InstantiateObserved is Instantiate with a progress callback invoked as
// the allocation unfolds ("prealloc", "piece", "churn") — the kernel-module
// sampling the paper uses for Figure 3's execution timeline.
func (s *Spec) InstantiateObserved(k *kernel.Kernel, task *kernel.Task, policy fault.Policy, seed uint64, scale float64, observe func(stage string)) (*Instance, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale %v must be positive", scale)
	}
	inst := &Instance{Spec: s, K: k, Task: task, rng: xrand.New(seed)}

	footprint := scaleBytes(s.Footprint, scale)
	stack := s.Alloc.StackBytes
	if stack == 0 {
		stack = 8 * units.MiB
	}
	sva, err := task.AS.MMapStack(stack)
	if err != nil {
		return nil, fmt.Errorf("workload %s: stack: %w", s.Name, err)
	}
	inst.StackVA, inst.StackBytes = sva, stack
	if _, err := inst.touch(policy, sva, stack); err != nil {
		return nil, err
	}

	// Pre-allocated arenas.
	prealloc := scaleBytes(uint64(float64(footprint)*s.Alloc.PreallocFrac), 1)
	if s.Alloc.PreallocFrac > 0 {
		chunks := s.Alloc.PreallocChunks
		if chunks <= 0 {
			chunks = 1
		}
		per := units.AlignUp(prealloc/uint64(chunks), units.Page4K)
		for i := 0; i < chunks; i++ {
			va, err := task.AS.MMapAligned(per, units.Page1G, vmm.KindAnon)
			if err != nil {
				return nil, fmt.Errorf("workload %s: prealloc: %w", s.Name, err)
			}
			if _, err := inst.touch(policy, va, per); err != nil {
				return nil, err
			}
			if observe != nil {
				observe("prealloc")
			}
		}
	}

	// Incremental pieces, touched as they arrive.
	remaining := footprint - prealloc
	piece := s.Alloc.PieceBytes
	if piece == 0 {
		piece = 4 * units.MiB
	}
	type region struct{ va, size uint64 }
	var pieces []region
	nPieces := 0
	if piece > 0 && remaining > 0 {
		nPieces = int((remaining + piece - 1) / piece)
	}
	gapEvery := 0
	if s.Alloc.Gaps > 0 && nPieces > s.Alloc.Gaps {
		gapEvery = nPieces / (s.Alloc.Gaps + 1)
	}
	for n := 0; remaining > 0; n++ {
		sz := piece
		if sz > remaining {
			sz = units.AlignUp(remaining, units.Page4K)
		}
		va, err := task.AS.MMap(sz, vmm.KindAnon)
		if err != nil {
			return nil, fmt.Errorf("workload %s: incremental: %w", s.Name, err)
		}
		if _, err := inst.touch(policy, va, sz); err != nil {
			return nil, err
		}
		pieces = append(pieces, region{va, sz})
		if observe != nil && n%8 == 0 {
			observe("piece")
		}
		if remaining <= sz {
			remaining = 0
		} else {
			remaining -= sz
		}
		if gapEvery > 0 && (n+1)%gapEvery == 0 {
			// A foreign mapping lands after this piece: burn a little VA so
			// the next piece cannot merge into the same VMA run.
			gap, err := task.AS.MMap(4*units.Page4K, vmm.KindAnon)
			if err != nil {
				return nil, err
			}
			if err := task.AS.MUnmap(gap+units.Page4K, 2*units.Page4K); err != nil {
				return nil, err
			}
		}
	}

	// Churn: free random pieces and allocate replacements (touched), leaving
	// holes behind.
	for op := 0; op < s.Alloc.ChurnOps && len(pieces) > 0; op++ {
		i := inst.rng.Intn(len(pieces))
		victim := pieces[i]
		pieces[i] = pieces[len(pieces)-1]
		pieces = pieces[:len(pieces)-1]
		if err := k.UnmapRange(task, victim.va, victim.va+victim.size); err != nil {
			return nil, fmt.Errorf("workload %s: churn unmap: %w", s.Name, err)
		}
		if err := task.AS.MUnmap(victim.va, victim.size); err != nil {
			return nil, fmt.Errorf("workload %s: churn unmap: %w", s.Name, err)
		}
		sz := units.AlignUp(victim.size/2+inst.rng.Uint64n(victim.size), units.Page4K)
		va, err := task.AS.MMap(sz, vmm.KindAnon)
		if err != nil {
			return nil, fmt.Errorf("workload %s: churn alloc: %w", s.Name, err)
		}
		if _, err := inst.touch(policy, va, sz); err != nil {
			return nil, err
		}
		pieces = append(pieces, region{va, sz})
		if observe != nil {
			observe("churn")
		}
	}

	inst.buildSegments(scale)
	return inst, nil
}

// touch demand-faults [va, va+size) in first-touch order, returning the
// summed synchronous latency of the faults it serviced. Already-mapped
// stretches are skipped (a greedy policy like 1GB-hugetlbfs maps whole
// aligned huge pages, covering later allocations in the same range).
func (inst *Instance) touch(policy fault.Policy, va, size uint64) (float64, error) {
	end := va + size
	var stall float64
	for va < end {
		if m, ok := inst.Task.AS.PT.Lookup(va); ok {
			va = m.VA + m.Size.Bytes()
			continue
		}
		r, err := policy.Handle(inst.Task, va)
		if err != nil {
			return stall, fmt.Errorf("workload %s: fault at %#x: %w", inst.Spec.Name, va, err)
		}
		inst.Faults++
		stall += r.LatencyNs
		next := r.VA + r.Size.Bytes()
		if next <= va {
			return stall, fmt.Errorf("workload %s: fault did not advance at %#x", inst.Spec.Name, va)
		}
		va = next
	}
	inst.FaultNs += stall
	return stall, nil
}

// buildSegments derives the linearized heap, the 1GB-unmappable fringe and
// the hot window from the final VMA layout.
func (inst *Instance) buildSegments(scale float64) {
	inst.heap = segments{}
	inst.fringe = segments{}
	for _, v := range inst.Task.AS.VMAs() {
		if v.Kind == vmm.KindStack {
			continue
		}
		inst.heap.add(v.Start, v.Size())
		core0 := units.AlignUp(v.Start, units.Page1G)
		core1 := units.Align(v.End, units.Page1G)
		if core1 <= core0 {
			// Whole VMA is fringe.
			inst.fringe.add(v.Start, v.Size())
			continue
		}
		if core0 > v.Start {
			inst.fringe.add(v.Start, core0-v.Start)
		}
		if v.End > core1 {
			inst.fringe.add(core1, v.End-core1)
		}
	}
	inst.hotBytes = scaleBytes(inst.Spec.Access.HotBytes, scale)
	if inst.hotBytes == 0 || inst.hotBytes > inst.heap.total {
		inst.hotBytes = inst.heap.total
	}
	a := inst.Spec.Access
	inst.writeFrac = a.WriteFrac
	inst.stackThresh = a.StackFrac
	inst.fringeThresh = a.StackFrac + a.FringeFrac
	inst.coldThresh = a.StackFrac + a.FringeFrac + a.ColdFrac
	inst.hasStack = inst.StackBytes > 0
	inst.hasFringe = inst.fringe.total > 0
	inst.refreshPlan()
}

// drawPlan is the compiled form of the draw stream: for each window Next
// draws from, the splitmix64 rejection bound Uint64n would recompute per
// draw (math.MaxUint64 - math.MaxUint64%n). Draw semantics are untouched —
// the same raw 64-bit values are accepted, rejected and reduced — so the
// batched stream is bit-identical to repeated Next calls.
type drawPlan struct {
	stackBound  uint64
	fringeBound uint64
	heapBound   uint64
	hotBound    uint64
}

// refreshPlan recompiles the draw plan and (re)builds the segment offset
// luts eagerly. Called whenever the heap geometry changes: buildSegments at
// instantiate time, and Extend when measurement-time inserts grow the heap.
func (inst *Instance) refreshPlan() {
	inst.plan.stackBound = rejectBound(inst.StackBytes)
	inst.plan.fringeBound = rejectBound(inst.fringe.total)
	inst.plan.heapBound = rejectBound(inst.heap.total)
	inst.plan.hotBound = rejectBound(inst.hotBytes)
	if inst.heap.total > 0 && inst.heap.lut == nil {
		inst.heap.buildLut()
	}
	if inst.fringe.total > 0 && inst.fringe.lut == nil {
		inst.fringe.buildLut()
	}
}

// rejectBound returns the smallest raw Uint64 value Uint64n(n) would reject
// (0 for an empty window, which is never drawn from).
func rejectBound(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return math.MaxUint64 - math.MaxUint64%n
}

// HeapBytes returns the total allocated heap bytes.
func (inst *Instance) HeapBytes() uint64 { return inst.heap.total }

// FringeBytes returns the heap bytes that are not coverable by any aligned
// 1GB page (the Figure-3 gap).
func (inst *Instance) FringeBytes() uint64 { return inst.fringe.total }

// Next returns the next reference (virtual address and whether it is a
// store).
func (inst *Instance) Next() (uint64, bool) {
	write := inst.rng.Bool(inst.writeFrac)
	r := inst.rng.Float64()
	switch {
	case r < inst.stackThresh && inst.hasStack:
		return inst.StackVA + inst.rng.Uint64n(inst.StackBytes), write
	case r < inst.fringeThresh && inst.hasFringe:
		return inst.fringe.at(inst.rng.Uint64n(inst.fringe.total)), write
	case r < inst.coldThresh:
		return inst.heap.at(inst.rng.Uint64n(inst.heap.total)), write
	default:
		return inst.heap.at(inst.rng.Uint64n(inst.hotBytes)), write
	}
}

// NextBatch fills buf with the next len(buf) references of the stream and
// returns the count drawn. It consumes exactly the raw splitmix64 values
// len(buf) Next calls would consume, in the same order with the same
// accept/reject decisions, so interleaving NextBatch calls of any sizes
// reproduces Next's stream bit-for-bit (pinned by TestNextBatchDeterminism).
// The per-draw work is inlined splitmix64 plus a precompiled rejection
// bound and the flat segment-offset lut — no per-draw bound arithmetic.
func (inst *Instance) NextBatch(buf []stream.Access) int {
	rng := inst.rng
	for i := range buf {
		// rng.Bool(writeFrac) and rng.Float64(), spelled out so the
		// compiler keeps the whole draw inline.
		write := float64(rng.Uint64()>>11)/(1<<53) < inst.writeFrac
		r := float64(rng.Uint64()>>11) / (1 << 53)
		var va uint64
		switch {
		case r < inst.stackThresh && inst.hasStack:
			va = inst.StackVA + draw(rng, inst.StackBytes, inst.plan.stackBound)
		case r < inst.fringeThresh && inst.hasFringe:
			va = inst.fringe.at(draw(rng, inst.fringe.total, inst.plan.fringeBound))
		case r < inst.coldThresh:
			va = inst.heap.at(draw(rng, inst.heap.total, inst.plan.heapBound))
		default:
			va = inst.heap.at(draw(rng, inst.hotBytes, inst.plan.hotBound))
		}
		buf[i] = stream.Access{VA: va, Write: write}
	}
	return len(buf)
}

// NextRuns draws the next n references of the stream — consuming exactly
// the raw splitmix64 values n Next calls would, like NextBatch — and
// coalesces consecutive references to the same page into stream.Runs at
// draw time. The page boundary is the finest configured page size (4KB), so
// every reference of a run lies in one page at every size a TLB could map
// it with. buf is the reusable backing array (its contents are overwritten;
// it grows only if n exceeds its capacity); the returned slice's Len fields
// sum to n. Expanding each run to Len copies of its first reference's page
// reproduces the page sequence of NextBatch bit-for-bit (pinned by
// TestNextRunsDeterminism across ragged draw counts).
func (inst *Instance) NextRuns(buf []stream.Run, n int) []stream.Run {
	rng := inst.rng
	runs := buf[:0]
	curPage := ^uint64(0) // no canonical VA shifts down to this sentinel
	pageShift := units.Size4K.Shift()
	for i := 0; i < n; i++ {
		// The draw body is NextBatch's, verbatim: same raw values, same
		// accept/reject decisions, same reduction.
		write := float64(rng.Uint64()>>11)/(1<<53) < inst.writeFrac
		r := float64(rng.Uint64()>>11) / (1 << 53)
		var va uint64
		switch {
		case r < inst.stackThresh && inst.hasStack:
			va = inst.StackVA + draw(rng, inst.StackBytes, inst.plan.stackBound)
		case r < inst.fringeThresh && inst.hasFringe:
			va = inst.fringe.at(draw(rng, inst.fringe.total, inst.plan.fringeBound))
		case r < inst.coldThresh:
			va = inst.heap.at(draw(rng, inst.heap.total, inst.plan.heapBound))
		default:
			va = inst.heap.at(draw(rng, inst.hotBytes, inst.plan.hotBound))
		}
		if page := va >> pageShift; page == curPage {
			runs[len(runs)-1].Len++
		} else {
			runs = append(runs, stream.Run{Access: stream.Access{VA: va, Write: write}, Len: 1})
			curPage = page
		}
	}
	return runs
}

// draw is Uint64n(n) with the rejection bound hoisted: accept the first raw
// value below bound (identical accept/reject sequence) and reduce mod n.
func draw(rng *xrand.Rand, n, bound uint64) uint64 {
	v := rng.Uint64()
	for v >= bound {
		v = rng.Uint64()
	}
	return v % n
}

func scaleBytes(b uint64, scale float64) uint64 {
	return units.AlignUp(uint64(float64(b)*scale), units.Page4K)
}

// Extend allocates `bytes` more heap (one incremental piece) and touches it
// through policy, modelling a key-value store inserting during measurement.
// It returns the total synchronous fault latency incurred. The new memory
// joins the heap segments (accessible by Next) but the hot window and
// fringe are left as built.
func (inst *Instance) Extend(policy fault.Policy, bytes uint64) (float64, error) {
	bytes = units.AlignUp(bytes, units.Page4K)
	va, err := inst.Task.AS.MMap(bytes, vmm.KindAnon)
	if err != nil {
		return 0, fmt.Errorf("workload %s: extend: %w", inst.Spec.Name, err)
	}
	stall, err := inst.touch(policy, va, bytes)
	if err != nil {
		return 0, err
	}
	inst.heap.add(va, bytes)
	inst.refreshPlan()
	return stall, nil
}
