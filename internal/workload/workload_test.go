package workload

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/stream"
	"repro/internal/units"
	"repro/internal/zerofill"
)

const testScale = 1.0 / 16

func instantiate(t *testing.T, name string, gb uint64, mk func(*kernel.Kernel) fault.Policy) (*Instance, fault.Policy) {
	t.Helper()
	spec, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	k := kernel.New(gb*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask(name)
	policy := mk(k)
	inst, err := spec.Instantiate(k, task, policy, 42, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return inst, policy
}

func thp(k *kernel.Kernel) fault.Policy { return fault.NewTHP(k) }

func trident(k *kernel.Kernel) fault.Policy {
	z := zerofill.New(k)
	z.Refill(1 << 20)
	return fault.NewTrident(k, z)
}

func TestAllSpecsComplete(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("got %d workloads, want 12 (Table 2)", len(specs))
	}
	names := map[string]bool{}
	sensitive := 0
	for _, s := range specs {
		if s.Name == "" || s.Footprint == 0 || s.PaperFootprint == 0 || s.Threads == 0 {
			t.Errorf("%q: incomplete spec", s.Name)
		}
		if s.Model.BaseCyclesPerAccess <= 0 || s.Model.Overlap <= 0 || s.Model.Overlap > 1 {
			t.Errorf("%q: bad model %+v", s.Name, s.Model)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.Sensitive1G {
			sensitive++
		}
	}
	if sensitive != 8 {
		t.Errorf("%d sensitive workloads, want the shaded eight", sensitive)
	}
	if len(Sensitive()) != 8 {
		t.Error("Sensitive() mismatch")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("GUPS"); !ok {
		t.Error("GUPS missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
}

func TestInstantiateFootprint(t *testing.T) {
	inst, _ := instantiate(t, "GUPS", 2, thp)
	want := scaleBytes(inst.Spec.Footprint, testScale)
	got := inst.HeapBytes()
	if got < want || got > want*105/100 {
		t.Errorf("heap = %d, want ≈%d", got, want)
	}
	// All heap bytes are mapped (touched at instantiation); allow the tiny
	// untouched gap pages.
	mapped := inst.Task.AS.PT.TotalMappedBytes()
	if mapped < want {
		t.Errorf("mapped = %d < footprint %d", mapped, want)
	}
}

// instantiateAt is instantiate with an explicit scale (1GB-granularity
// behaviour needs chunks of at least 1GB, i.e. a larger scale).
func instantiateAt(t *testing.T, name string, gb uint64, scale float64, mk func(*kernel.Kernel) fault.Policy) (*Instance, fault.Policy) {
	t.Helper()
	spec, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	k := kernel.New(gb*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask(name)
	policy := mk(k)
	inst, err := spec.Instantiate(k, task, policy, 42, scale)
	if err != nil {
		t.Fatal(err)
	}
	return inst, policy
}

func TestPreallocWorkloadGets1GAtFault(t *testing.T) {
	inst, policy := instantiateAt(t, "GUPS", 6, 0.5, trident)
	if inst.Task.AS.PT.MappedPages(units.Size1G) == 0 {
		t.Error("pre-allocating workload got no 1GB pages at fault time")
	}
	if policy.FaultStats().Faults[units.Size1G] == 0 {
		t.Error("no 1GB faults recorded")
	}
}

func TestIncrementalWorkloadGetsNo1GAtFault(t *testing.T) {
	// Table 3: Redis's fault handler never allocates a single 1GB page.
	inst, _ := instantiate(t, "Redis", 2, trident)
	if got := inst.Task.AS.PT.MappedPages(units.Size1G); got != 0 {
		t.Errorf("incremental workload got %d 1GB pages at fault time", got)
	}
}

func TestChurnCreatesFringe(t *testing.T) {
	inst, _ := instantiate(t, "Graph500", 2, thp)
	if inst.FringeBytes() == 0 {
		t.Error("Graph500 has no 1GB-unmappable fringe (Figure 3 gap missing)")
	}
	// The gap: 2MB-mappable exceeds 1GB-mappable.
	m2 := inst.Task.AS.MappableBytes(units.Size2M)
	m1 := inst.Task.AS.MappableBytes(units.Size1G)
	if m1 >= m2 {
		t.Errorf("no mappability gap: 1G=%d 2M=%d", m1, m2)
	}
}

func TestPreallocHasMinimalFringe(t *testing.T) {
	inst, _ := instantiateAt(t, "XSBench", 8, 0.5, thp)
	if frac := float64(inst.FringeBytes()) / float64(inst.HeapBytes()); frac > 0.1 {
		t.Errorf("pre-allocated workload fringe fraction = %v", frac)
	}
}

func TestNextStaysInBounds(t *testing.T) {
	inst, _ := instantiate(t, "Redis", 2, thp)
	stackHits := 0
	for i := 0; i < 20000; i++ {
		va, _ := inst.Next()
		if va >= inst.StackVA && va < inst.StackVA+inst.StackBytes {
			stackHits++
			continue
		}
		if _, ok := inst.Task.AS.FindVMA(va); !ok {
			t.Fatalf("access %#x outside any VMA", va)
		}
	}
	// Redis: ~8% stack accesses.
	if stackHits < 1000 || stackHits > 2600 {
		t.Errorf("stack hits = %d of 20000, want ≈1600", stackHits)
	}
}

func TestNextDeterminism(t *testing.T) {
	a, _ := instantiate(t, "GUPS", 2, thp)
	b, _ := instantiate(t, "GUPS", 2, thp)
	for i := 0; i < 1000; i++ {
		va1, w1 := a.Next()
		va2, w2 := b.Next()
		if va1 != va2 || w1 != w2 {
			t.Fatalf("divergence at access %d", i)
		}
	}
}

func TestHotWindowConcentration(t *testing.T) {
	inst, _ := instantiate(t, "CC", 2, thp)
	hot := scaleBytes(inst.Spec.Access.HotBytes, testScale)
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		va, _ := inst.Next()
		// The hot window is the VA-order prefix of the heap.
		pos := uint64(0)
		found := false
		for j, start := range inst.heap.starts {
			segEnd := start + segSize(&inst.heap, j)
			if va >= start && va < segEnd {
				pos = inst.heap.cum[j] + (va - start)
				found = true
				break
			}
		}
		if found && pos < hot {
			inHot++
		}
	}
	if frac := float64(inHot) / n; frac < 0.85 {
		t.Errorf("hot-window fraction = %v, want ≥0.85", frac)
	}
}

func segSize(s *segments, i int) uint64 {
	if i+1 < len(s.cum) {
		return s.cum[i+1] - s.cum[i]
	}
	return s.total - s.cum[i]
}

func TestFaultLatenciesRecorded(t *testing.T) {
	inst, _ := instantiate(t, "Btree", 2, thp)
	if inst.Faults == 0 {
		t.Fatal("no faults recorded during population")
	}
	if inst.FaultNs <= 0 {
		t.Fatalf("population faults recorded non-positive total latency: %v", inst.FaultNs)
	}
	if avg := inst.FaultNs / float64(inst.Faults); avg <= 0 {
		t.Fatalf("non-positive mean fault latency: %v", avg)
	}
}

func TestInstantiateBadScale(t *testing.T) {
	spec, _ := ByName("GUPS")
	k := kernel.New(units.Page1G, units.TridentMaxOrder)
	if _, err := spec.Instantiate(k, k.NewTask("x"), thp(k), 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

// Instantiating every workload under both THP and Trident must succeed and
// preserve the invariant: mapped bytes ≈ heap + stack, no frame leaks.
func TestInstantiateAllWorkloads(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
			task := k.NewTask(spec.Name)
			inst, err := spec.Instantiate(k, task, trident(k), 7, testScale)
			if err != nil {
				t.Fatal(err)
			}
			mapped := task.AS.PT.TotalMappedBytes()
			if mapped == 0 {
				t.Fatal("nothing mapped")
			}
			if k.Mem.AllocatedFrames()*units.Page4K < mapped {
				t.Error("fewer frames allocated than mapped")
			}
			for i := 0; i < 100; i++ {
				if va, _ := inst.Next(); va == 0 {
					t.Fatal("zero VA generated")
				}
			}
		})
	}
}

func TestExtendAddsAccessibleMemory(t *testing.T) {
	inst, policy := instantiate(t, "Redis", 2, thp)
	before := inst.HeapBytes()
	stall, err := inst.Extend(policy, 256*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if stall <= 0 {
		t.Error("extension faulted for free")
	}
	if inst.HeapBytes() != before+256*units.KiB {
		t.Errorf("heap = %d, want %d", inst.HeapBytes(), before+256*units.KiB)
	}
}

func TestObservedInstantiationEvents(t *testing.T) {
	spec, _ := ByName("Graph500")
	k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	task := k.NewTask("g")
	events := map[string]int{}
	_, err := spec.InstantiateObserved(k, task, thp(k), 1, testScale, func(stage string) {
		events[stage]++
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"prealloc", "piece", "churn"} {
		if events[stage] == 0 {
			t.Errorf("no %q events observed", stage)
		}
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	inst, _ := instantiate(t, "GUPS", 2, thp)
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, w := inst.Next(); w {
			writes++
		}
	}
	frac := float64(writes) / n
	want := inst.Spec.Access.WriteFrac
	if frac < want-0.05 || frac > want+0.05 {
		t.Errorf("write fraction = %v, want ≈%v", frac, want)
	}
}

// TestNextBatchDeterminism pins the batched draw contract: NextBatch must
// reproduce the exact reference stream Next produces, for any sequence of
// batch sizes. Two instances of the same (workload, seed) are advanced in
// lockstep — one scalar, one through NextBatch with deliberately ragged
// batch sizes — and every (VA, write) pair must match positionally, so the
// batched pipeline cannot drift from the scalar stream at batch-size
// boundaries (accept/reject loops inside a draw straddle them).
func TestNextBatchDeterminism(t *testing.T) {
	for _, name := range []string{"GUPS", "Redis", "SVM"} {
		t.Run(name, func(t *testing.T) {
			scalar, _ := instantiate(t, name, 2, thp)
			batched, _ := instantiate(t, name, 2, thp)

			// Ragged sizes: primes and powers, including 1, so draws land
			// on every alignment relative to the batch boundary.
			sizes := []int{1, 3, 17, 256, 7, 64, 1000, 5, 129, 2}
			buf := make([]stream.Access, 1000)
			drawn := 0
			for _, n := range sizes {
				got := batched.NextBatch(buf[:n])
				if got != n {
					t.Fatalf("NextBatch(%d) = %d", n, got)
				}
				for i := 0; i < n; i++ {
					va, write := scalar.Next()
					if buf[i].VA != va || buf[i].Write != write {
						t.Fatalf("draw %d: batch (%#x, %v) != scalar (%#x, %v)",
							drawn+i, buf[i].VA, buf[i].Write, va, write)
					}
				}
				drawn += n
			}
		})
	}
}

// TestNextRunsDeterminism pins the run-coalesced draw contract: NextRuns
// must consume exactly the raw values NextBatch would and produce maximal
// runs whose expansion — Len references, all in the leading reference's
// page — reproduces NextBatch's page sequence bit-for-bit, for any sequence
// of ragged draw counts. Three instances of the same (workload, seed) are
// advanced in lockstep: one through NextBatch (the reference stream), one
// through NextRuns, and one through Next to prove the rng cursor of the
// runs instance never drifts at draw-count boundaries.
func TestNextRunsDeterminism(t *testing.T) {
	for _, name := range []string{"GUPS", "Redis", "SVM"} {
		t.Run(name, func(t *testing.T) {
			batched, _ := instantiate(t, name, 2, thp)
			coalesced, _ := instantiate(t, name, 2, thp)

			// Ragged counts: primes and powers, including 1, so runs end
			// on every alignment relative to the draw-count boundary.
			sizes := []int{1, 3, 17, 256, 7, 64, 1000, 5, 129, 2}
			batch := make([]stream.Access, 1000)
			runBuf := make([]stream.Run, 0, 1000)
			pageShift := units.Size4K.Shift()
			drawn := 0
			for _, n := range sizes {
				if got := batched.NextBatch(batch[:n]); got != n {
					t.Fatalf("NextBatch(%d) = %d", n, got)
				}
				runs := coalesced.NextRuns(runBuf, n)
				total := 0
				i := 0 // position within batch[:n]
				for k, r := range runs {
					if r.Len < 1 {
						t.Fatalf("run %d has Len %d", k, r.Len)
					}
					// The leading reference is the draw itself, verbatim.
					if r.VA != batch[i].VA || r.Write != batch[i].Write {
						t.Fatalf("draw %d: run lead (%#x, %v) != batch (%#x, %v)",
							drawn+i, r.VA, r.Write, batch[i].VA, batch[i].Write)
					}
					// Every coalesced reference shares the leading page.
					for j := 1; j < r.Len; j++ {
						if batch[i+j].VA>>pageShift != r.VA>>pageShift {
							t.Fatalf("draw %d: coalesced into run at page %#x but batch page is %#x",
								drawn+i+j, r.VA>>pageShift, batch[i+j].VA>>pageShift)
						}
					}
					// Runs are maximal: the next run starts a new page.
					if k+1 < len(runs) && runs[k+1].VA>>pageShift == r.VA>>pageShift {
						t.Fatalf("run %d not maximal: next run shares page %#x", k, r.VA>>pageShift)
					}
					i += r.Len
					total += r.Len
				}
				if total != n {
					t.Fatalf("NextRuns(%d): Len fields sum to %d", n, total)
				}
				drawn += n
			}
		})
	}
}
