package xrand

import "testing"

// BenchmarkZipfNext measures one Zipf draw at a workload-typical shape
// (2^20 items, s = 0.99): a quantile-index lookup plus a short binary
// search over the bracketed CDF range.
func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}

// BenchmarkUint64n pins the base generator's cost for comparison.
func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(1 << 30)
	}
	_ = sink
}
