// Package xrand provides the deterministic random-number generation used by
// every stochastic component of the simulator (workload access streams, the
// fragmenter, sampled promotion scans). All randomness in the repository
// flows from explicit seeds through this package so that every experiment is
// exactly reproducible.
//
// The core generator is splitmix64 (Steele et al.), which is tiny, fast,
// passes BigCrush when used as a stream, and — unlike math/rand's global
// functions — carries no hidden global state.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random number in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill here;
	// modulo bias is negligible for the ranges the simulator uses (< 2^40),
	// but reject the biased tail anyway so property tests on uniformity hold.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new independent generator derived from r's stream.
// Useful for giving each subsystem its own stream from one experiment seed.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Zipf generates Zipf-distributed values over [0, n): value k is drawn with
// probability proportional to 1/(k+1)^s. It is used to model skewed
// ("hot/cold") access patterns such as key-value-store key popularity.
type Zipf struct {
	r   *Rand
	n   uint64
	s   float64
	cdf []float64 // cumulative distribution, len n (built once)
}

// NewZipf returns a Zipf generator over [0, n) with exponent s > 0.
// Construction is O(n); n is expected to be modest (regions, not bytes).
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{r: r, n: n, s: s, cdf: cdf}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}
