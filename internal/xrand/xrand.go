// Package xrand provides the deterministic random-number generation used by
// every stochastic component of the simulator (workload access streams, the
// fragmenter, sampled promotion scans). All randomness in the repository
// flows from explicit seeds through this package so that every experiment is
// exactly reproducible.
//
// The core generator is splitmix64 (Steele et al.), which is tiny, fast,
// passes BigCrush when used as a stream, and — unlike math/rand's global
// functions — carries no hidden global state.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random number in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill here;
	// modulo bias is negligible for the ranges the simulator uses (< 2^40),
	// but reject the biased tail anyway so property tests on uniformity hold.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new independent generator derived from r's stream.
// Useful for giving each subsystem its own stream from one experiment seed.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Zipf generates Zipf-distributed values over [0, n): value k is drawn with
// probability proportional to 1/(k+1)^s. It is used to model skewed
// ("hot/cold") access patterns such as key-value-store key popularity.
type Zipf struct {
	r   *Rand
	n   uint64
	s   float64
	cdf []float64 // cumulative distribution, len n (built once)
	// qidx is the quantile index over the CDF: qidx[j] is the draw for
	// u = j/Q exactly (Q = len(qidx)-1, a power of two), so the answer for
	// any u in [j/Q, (j+1)/Q) lies in [qidx[j], qidx[j+1]] by monotonicity
	// and the per-draw binary search narrows to that sliver of the CDF.
	qidx []int32
}

// NewZipf returns a Zipf generator over [0, n) with exponent s > 0.
// Construction is O(n); n is expected to be modest (regions, not bytes).
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	z := &Zipf{r: r, n: n, s: s, cdf: cdf}
	// Quantile count: a power of two (so u*Q is an exact scaling and
	// floor(u*Q) bins u exactly) of the same magnitude as n, bounded to keep
	// the index a fraction of the CDF's own footprint.
	q := 256
	for uint64(q) < n && q < 1<<16 {
		q <<= 1
	}
	z.qidx = make([]int32, q+1)
	k := 0
	for j := 0; j <= q; j++ {
		// qidx[j] = smallest k with cdf[k] >= j/q, capped at n-1 — exactly
		// the value Next's search would return for u = j/q.
		u := float64(j) / float64(q)
		for k < int(n)-1 && cdf[k] < u {
			k++
		}
		z.qidx[j] = int32(k)
	}
	return z
}

// Next returns the next Zipf-distributed value in [0, n).
//
// The quantile index narrows the search to [qidx[j], qidx[j+1]]; within
// that range the loop is the same binary search over the same CDF with the
// same comparisons, so the draw→value mapping is bit-identical to searching
// [0, n) — the invariant "smallest k with cdf[k] >= u" does not depend on
// how tightly the initial bounds bracket the answer.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	j := int(u * float64(len(z.qidx)-1))
	lo, hi := int(z.qidx[j]), int(z.qidx[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}
