package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	f := func(n uint32) bool {
		m := uint64(n%1000) + 1
		v := r.Uint64n(m)
		return v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := trials / n
	for k, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) hit fraction %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(17)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first values")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the most popular, and substantially hotter than rank 50.
	if counts[0] <= counts[1] {
		t.Errorf("zipf rank 0 (%d) not hotter than rank 1 (%d)", counts[0], counts[1])
	}
	if counts[0] < 10*counts[50] {
		t.Errorf("zipf insufficiently skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 7, 0.8)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v >= 7 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestZipfPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
