// Package zerofill models Trident's asynchronous zero-fill daemon (§5.1.2).
//
// A 1GB page fault must hand the application zeroed memory (leftover data
// must not leak), and zeroing 1GB synchronously costs ≈400 ms. The daemon
// instead zero-fills free 1GB regions in the background; a fault that finds
// a pre-zeroed region completes in ≈2.7 ms. The paper reports this dropped
// the boot time of a 70GB VM from 25 s to 13 s.
//
// The "is this region still zeroed?" problem is handled the way the kernel
// does: the zeroed flag lives with the physical region metadata and any
// allocation touching the region clears it (phys.RegionStats.Zeroed).
package zerofill

import (
	"repro/internal/kernel"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// Daemon is the background zero-filler.
type Daemon struct {
	K *kernel.Kernel

	// RegionsZeroed counts background zero-fill operations performed.
	RegionsZeroed uint64
	// Nanoseconds is modeled background CPU time spent zeroing.
	Nanoseconds float64

	// FailTake, if set, is consulted by TakeZeroed; returning true makes
	// the pool report exhaustion even if zeroed regions exist, forcing the
	// caller onto the synchronous-zeroing or smaller-page path. The chaos
	// injector (internal/chaos) uses it; nil in ordinary runs.
	FailTake func() bool
	// PoolExhausted counts TakeZeroed calls that found (or were forced to
	// report) no pre-zeroed region.
	PoolExhausted uint64

	// OnRefill, if set, observes each Refill wakeup that zeroed at least
	// one region. The observability layer uses it to emit trace events;
	// nil in ordinary runs.
	OnRefill func(zeroed int)
}

// New creates a zero-fill daemon over k.
func New(k *kernel.Kernel) *Daemon { return &Daemon{K: k} }

// Refill zero-fills up to max fully-free, not-yet-zeroed 1GB regions,
// returning how many it zeroed. This is one wakeup of the kernel thread.
func (d *Daemon) Refill(max int) int {
	if max <= 0 {
		return 0
	}
	mem := d.K.Mem
	zeroed := 0
	for r := uint64(0); r < mem.NumRegions() && zeroed < max; r++ {
		st := mem.Region(r)
		if st.Free == units.FramesPerRegion && !st.Zeroed {
			mem.SetRegionZeroed(r)
			d.RegionsZeroed++
			d.Nanoseconds += perfmodel.ZeroNs(units.Page1G)
			zeroed++
		}
	}
	if zeroed > 0 && d.OnRefill != nil {
		d.OnRefill(zeroed)
	}
	return zeroed
}

// ZeroedAvailable returns the number of free 1GB regions currently
// pre-zeroed.
func (d *Daemon) ZeroedAvailable() int {
	mem := d.K.Mem
	n := 0
	for r := uint64(0); r < mem.NumRegions(); r++ {
		if st := mem.Region(r); st.Free == units.FramesPerRegion && st.Zeroed {
			n++
		}
	}
	return n
}

// TakeZeroed allocates one pre-zeroed 1GB chunk, returning its head PFN.
// The second result is false if no zeroed region is available (the caller
// then either zeroes synchronously or falls back to a smaller page).
func (d *Daemon) TakeZeroed() (uint64, bool) {
	if d.FailTake != nil && d.FailTake() {
		d.PoolExhausted++
		return 0, false
	}
	mem := d.K.Mem
	for r := uint64(0); r < mem.NumRegions(); r++ {
		st := mem.Region(r)
		if st.Free != units.FramesPerRegion || !st.Zeroed {
			continue
		}
		pfn := r * units.FramesPerRegion
		if err := d.K.Buddy.AllocSpecific(pfn, units.Order1G, false); err != nil {
			continue
		}
		return pfn, true
	}
	d.PoolExhausted++
	return 0, false
}
