package zerofill

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func TestRefillZeroesFreeRegions(t *testing.T) {
	k := kernel.New(4*units.Page1G, units.TridentMaxOrder)
	d := New(k)
	if n := d.Refill(2); n != 2 {
		t.Fatalf("Refill = %d, want 2", n)
	}
	if d.ZeroedAvailable() != 2 {
		t.Errorf("ZeroedAvailable = %d", d.ZeroedAvailable())
	}
	if n := d.Refill(10); n != 2 {
		t.Errorf("second Refill = %d, want remaining 2", n)
	}
	// No regions left to zero.
	if n := d.Refill(10); n != 0 {
		t.Errorf("third Refill = %d, want 0", n)
	}
	if d.RegionsZeroed != 4 {
		t.Errorf("RegionsZeroed = %d", d.RegionsZeroed)
	}
	// Background time: 4 × ~400ms.
	wantNs := 4 * perfmodel.ZeroNs(units.Page1G)
	if d.Nanoseconds != wantNs {
		t.Errorf("Nanoseconds = %v, want %v", d.Nanoseconds, wantNs)
	}
}

func TestRefillSkipsOccupiedRegions(t *testing.T) {
	k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	if _, err := k.Buddy.Alloc(0, false); err != nil {
		t.Fatal(err)
	}
	d := New(k)
	if n := d.Refill(10); n != 1 {
		t.Errorf("Refill = %d, want 1 (one region occupied)", n)
	}
}

func TestTakeZeroed(t *testing.T) {
	k := kernel.New(2*units.Page1G, units.TridentMaxOrder)
	d := New(k)
	d.Refill(10)
	pfn, ok := d.TakeZeroed()
	if !ok {
		t.Fatal("TakeZeroed failed")
	}
	if !units.IsAligned(pfn, units.FramesPerRegion) {
		t.Errorf("pfn %d not region-aligned", pfn)
	}
	if !k.Mem.IsAllocated(pfn) {
		t.Error("chunk not allocated")
	}
	if d.ZeroedAvailable() != 1 {
		t.Errorf("ZeroedAvailable = %d", d.ZeroedAvailable())
	}
	// Taking a zeroed region clears its flag (it is now in use).
	if k.Mem.Region(units.RegionOfFrame(pfn)).Zeroed {
		t.Error("taken region still marked zeroed")
	}
}

func TestTakeZeroedEmptyPool(t *testing.T) {
	k := kernel.New(units.Page1G, units.TridentMaxOrder)
	d := New(k)
	if _, ok := d.TakeZeroed(); ok {
		t.Error("TakeZeroed succeeded without refill")
	}
}

func TestAllocationInvalidatesZeroed(t *testing.T) {
	k := kernel.New(units.Page1G, units.TridentMaxOrder)
	d := New(k)
	d.Refill(1)
	// Someone else allocates a 4KB page inside the zeroed region.
	if _, err := k.Buddy.Alloc(0, false); err != nil {
		t.Fatal(err)
	}
	if d.ZeroedAvailable() != 0 {
		t.Error("allocation did not invalidate zeroed flag")
	}
	if _, ok := d.TakeZeroed(); ok {
		t.Error("stale zeroed region handed out")
	}
}

func TestFreeDoesNotRestoreZeroed(t *testing.T) {
	k := kernel.New(units.Page1G, units.TridentMaxOrder)
	d := New(k)
	d.Refill(1)
	pfn, err := k.Buddy.Alloc(0, false)
	if err != nil {
		t.Fatal(err)
	}
	k.Buddy.Free(pfn, 0)
	// The region is fully free again but its contents are dirty.
	if d.ZeroedAvailable() != 0 {
		t.Error("freeing restored zeroed status")
	}
	// But the daemon can re-zero it.
	if n := d.Refill(1); n != 1 {
		t.Error("daemon could not re-zero region")
	}
}

func TestRefillZeroMax(t *testing.T) {
	k := kernel.New(units.Page1G, units.TridentMaxOrder)
	d := New(k)
	if d.Refill(0) != 0 || d.Refill(-1) != 0 {
		t.Error("non-positive max should be a no-op")
	}
}
