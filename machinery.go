package trident

import (
	"repro/internal/buddy"
	"repro/internal/compact"
	"repro/internal/fault"
	"repro/internal/fragment"
	"repro/internal/kernel"
	"repro/internal/mmu"
	"repro/internal/pagetable"
	"repro/internal/promote"
	"repro/internal/units"
	"repro/internal/virt"
	"repro/internal/vmm"
	"repro/internal/zerofill"
)

// This file exposes the building blocks beneath Run for programs that want
// to drive the machinery directly (the examples/ directory does): the
// kernel, fault policies, daemons, compactors and the virtualization layer.

// Page sizes and byte units.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB

	Page4K = units.Page4K
	Page2M = units.Page2M
	Page1G = units.Page1G
)

// PageSize identifies one of the three x86-64 page sizes.
type PageSize = units.PageSize

// The three translation granularities.
const (
	Size4K = units.Size4K
	Size2M = units.Size2M
	Size1G = units.Size1G
)

// Buddy-allocator flavours (maximum tracked chunk order).
const (
	// StockMaxOrder: unmodified Linux free lists (up to 4MB chunks).
	StockMaxOrder = units.StockMaxOrder
	// TridentMaxOrder: Trident's extension (up to 1GB chunks, §5.1.1).
	TridentMaxOrder = units.TridentMaxOrder
)

// HumanBytes renders a byte count like "1.5GB".
func HumanBytes(n uint64) string { return units.HumanBytes(n) }

// Kernel is the simulated operating system: physical memory, buddy
// allocator, tasks and the primitive mapping operations.
type Kernel = kernel.Kernel

// Task is one process (an address space plus accounting).
type Task = kernel.Task

// NewKernel boots a kernel over memBytes of physical memory with the given
// buddy flavour (StockMaxOrder or TridentMaxOrder).
func NewKernel(memBytes uint64, maxOrder int) *Kernel { return kernel.New(memBytes, maxOrder) }

// BuddyAllocator manages physical frames in power-of-two chunks.
type BuddyAllocator = buddy.Allocator

// PageTable is a 4-level x86-64 radix page table.
type PageTable = pagetable.Table

// Mapping describes one leaf page-table entry.
type Mapping = pagetable.Mapping

// FaultPolicy decides what page size serves a page fault.
type FaultPolicy = fault.Policy

// FaultResult describes how a fault was served.
type FaultResult = fault.Result

// Fault-policy constructors.
var (
	// NewBase4KPolicy maps every fault with 4KB pages.
	NewBase4KPolicy = fault.NewBase4K
	// NewTHPPolicy is Linux THP's fault path (2MB, fall back to 4KB).
	NewTHPPolicy = fault.NewTHP
	// NewHugetlbfsPolicy statically reserves a pool of huge pages.
	NewHugetlbfsPolicy = fault.NewHugetlbfs
	// NewTridentPolicy is the paper's 1GB → 2MB → 4KB fault path (§5.1.2).
	NewTridentPolicy = fault.NewTrident
)

// ZeroFillDaemon is the asynchronous 1GB zero-filler (§5.1.2).
type ZeroFillDaemon = zerofill.Daemon

// NewZeroFillDaemon creates a zero-fill daemon over k.
func NewZeroFillDaemon(k *Kernel) *ZeroFillDaemon { return zerofill.New(k) }

// PromoteDaemon is khugepaged: stock (2MB) or Trident's Figure-5 version.
type PromoteDaemon = promote.Daemon

// PromoteStats summarizes promotion activity.
type PromoteStats = promote.Stats

// NewPromoteDaemon creates stock khugepaged (2MB promotion only).
func NewPromoteDaemon(k *Kernel, zero *ZeroFillDaemon) *PromoteDaemon {
	return promote.New(k, zero)
}

// NewTridentPromoteDaemon creates Trident's promotion daemon: 1GB promotion
// with smart compaction, falling back to 2MB (Figure 5).
func NewTridentPromoteDaemon(k *Kernel, zero *ZeroFillDaemon) *PromoteDaemon {
	return promote.NewTrident(k, zero)
}

// SmartCompactor is Trident's region-counter-guided compactor (§5.1.3).
type SmartCompactor = compact.Smart

// NormalCompactor is Linux's sequential-scanning compactor.
type NormalCompactor = compact.Normal

// NewSmartCompactor creates a smart compactor over k.
func NewSmartCompactor(k *Kernel) *SmartCompactor { return compact.NewSmart(k) }

// NewNormalCompactor creates a sequential compactor over k.
func NewNormalCompactor(k *Kernel) *NormalCompactor { return compact.NewNormal(k) }

// Fragmenter reproduces the §3 fragmentation methodology.
type Fragmenter = fragment.Fragmenter

// FragmentConfig controls the fragmentation pattern.
type FragmentConfig = fragment.Config

// FragmentMemory fragments k's physical memory (page-cache fill, clustered
// unmovable data, skewed reclaim) and returns the fragmenter.
func FragmentMemory(k *Kernel, cfg FragmentConfig) (*Fragmenter, error) {
	return fragment.Apply(k, cfg)
}

// VM is a virtual machine: a host-side task backing guest-physical memory
// plus a complete guest kernel.
type VM = virt.VM

// NewVM creates a VM with guestBytes of memory backed through hostPolicy.
func NewVM(host *Kernel, hostPolicy FaultPolicy, guestBytes uint64, guestMaxOrder int) (*VM, error) {
	return virt.New(host, hostPolicy, guestBytes, guestMaxOrder)
}

// PvBridge buffers Trident_pv exchange requests between a guest promotion
// daemon and the hypervisor; Flush issues them as hypercalls.
type PvBridge = virt.PvBridge

// MMU simulates a core's translation hardware (TLBs, paging-structure
// caches, nested walks).
type MMU = mmu.MMU

// NewMMU creates a native-mode MMU; NewNestedMMU one for VMs.
func NewMMU(cfg TLBConfig) *MMU       { return mmu.New(cfg) }
func NewNestedMMU(cfg TLBConfig) *MMU { return mmu.NewNested(cfg) }

// VMAKind classifies virtual memory areas.
type VMAKind = vmm.Kind

// VMA kinds.
const (
	VMAAnon  = vmm.KindAnon
	VMAStack = vmm.KindStack
)
