// Package trident is a full functional reproduction, in pure Go, of
// "Trident: Harnessing Architectural Resources for All Page Sizes in x86
// Processors" (Ram, Panwar, Basu — MICRO '21).
//
// The paper extends Linux so that transparent huge-page support covers all
// three x86-64 page sizes (4KB, 2MB, 1GB): a buddy allocator that tracks
// free memory up to 1GB chunks, a page-fault handler that tries 1GB → 2MB →
// 4KB, a promotion daemon following Figure 5, region-counter-guided "smart"
// compaction, asynchronous zero-fill of 1GB regions, and — under
// virtualization — Trident_pv's copy-less promotion via gPA↔hPA mapping
// exchange hypercalls.
//
// Since a Go library cannot patch a kernel or read TLB performance
// counters, this repository implements the complete stack as a discrete
// simulator: physical memory and buddy allocator, 4-level x86-64 page
// tables, Skylake TLB hierarchy and paging-structure caches, VMAs and fault
// handling, THP/HawkEye baselines, the Trident policies, a KVM-like nested
// translation layer, models of the paper's 12 workloads, and a harness that
// regenerates every figure and table of the evaluation. See DESIGN.md for
// the substitution rationale and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Quick start
//
//	w, _ := trident.WorkloadByName("GUPS")
//	res, err := trident.Run(trident.Config{Workload: w, Policy: trident.PolicyTrident})
//	if err != nil { ... }
//	fmt.Println(res.Perf.WalkCycleFraction, res.MappedFinal)
//
// Compare systems exactly as the paper does:
//
//	table := trident.Figure9(trident.FullScale())
//	fmt.Println(table)      // aligned text
//	os.WriteFile("fig9.csv", []byte(table.CSV()), 0o644)
package trident

import (
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/workload"
)

// Config describes one simulation run: a workload, a memory-management
// policy, and the machine/measurement parameters. See sim.Config for field
// documentation.
type Config = sim.Config

// Result carries everything a run measures: translation statistics, the
// modeled performance, page-size breakdowns, daemon statistics and tail
// latency.
type Result = sim.Result

// Policy selects the memory-management configuration under test.
type Policy = sim.PolicyKind

// The policies the paper evaluates.
const (
	// Policy4K disables all large pages.
	Policy4K = sim.Policy4K
	// PolicyTHP is Linux's Transparent Huge Pages (2MB only).
	PolicyTHP = sim.PolicyTHP
	// PolicyHugetlbfs2M / PolicyHugetlbfs1G statically pre-reserve pages.
	PolicyHugetlbfs2M = sim.PolicyHugetlbfs2M
	PolicyHugetlbfs1G = sim.PolicyHugetlbfs1G
	// PolicyHawkEye is the ASPLOS '19 baseline the paper compares against.
	PolicyHawkEye = sim.PolicyHawkEye
	// PolicyTrident is the paper's full system.
	PolicyTrident = sim.PolicyTrident
	// PolicyTrident1GOnly and PolicyTridentNC are Figure 11's ablations.
	PolicyTrident1GOnly = sim.PolicyTrident1GOnly
	PolicyTridentNC     = sim.PolicyTridentNC
)

// PolicyByName looks a policy up by its CLI name ("4k", "thp", "trident",
// ...); PolicyNames lists the valid names.
func PolicyByName(name string) (Policy, bool) { return sim.PolicyByName(name) }

// PolicyNames returns the valid CLI policy names, sorted.
func PolicyNames() []string { return sim.PolicyNames() }

// Run executes one configuration.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// Fingerprint returns the content address a Config's result is stored
// under: the memo-cache fingerprint shared by the checkpoint journal and
// the persistent result store (see internal/store). Two processes — or two
// runs years apart — that fingerprint the same Config will exchange
// results through a shared store.
func Fingerprint(cfg Config) string { return runner.Fingerprint(cfg) }

// Workload models one of the paper's Table-2 applications.
type Workload = workload.Spec

// Workloads returns all 12 Table-2 workload models.
func Workloads() []*Workload { return workload.All() }

// WorkloadByName looks a workload up by its Table-2 name
// (e.g. "XSBench", "GUPS", "Redis").
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// SensitiveWorkloads returns the eight 1GB-sensitive applications (the
// shaded set of Figure 1).
func SensitiveWorkloads() []*Workload { return workload.Sensitive() }

// Table is a rendered experiment result (text via String, CSV via CSV).
type Table = stats.Table

// Settings scales an experiment suite.
type Settings = experiments.Settings

// FullScale returns the default experiment settings: a 32GB machine,
// Skylake TLBs, ÷10 footprints, 2M sampled references per configuration.
func FullScale() Settings { return Settings{} }

// QuickScale returns reduced settings (half-scale footprints, ~4× smaller
// TLBs) for fast iteration, used by the test suite and benchmarks.
func QuickScale() Settings { return experiments.Quick() }

// TLBConfig describes a core's translation-cache geometry.
type TLBConfig = tlb.Config

// SkylakeTLB returns the paper's Table-1 TLB configuration.
func SkylakeTLB() TLBConfig { return tlb.Skylake() }

// Experiment drivers: one per figure/table of the paper's evaluation.
// Each returns a Table whose rows mirror what the paper plots.
var (
	// Figure1: native walk cycles + performance across page sizes.
	Figure1 = experiments.Figure1
	// Figure2: the same under virtualization (4KB+4KB / 2MB+2MB / 1GB+1GB).
	Figure2 = experiments.Figure2
	// Figure3: 1GB- vs 2MB-mappable virtual memory over time.
	Figure3 = experiments.Figure3
	// Figure4: relative TLB-miss frequency across VA regions.
	Figure4 = experiments.Figure4
	// Figure7: bytes-copied reduction from smart compaction.
	Figure7 = experiments.Figure7
	// Figure9/Figure10: THP vs HawkEye vs Trident, un-fragmented/fragmented.
	Figure9  = experiments.Figure9
	Figure10 = experiments.Figure10
	// Figure11: the Trident-1Gonly / Trident-NC ablation.
	Figure11 = experiments.Figure11
	// Figure12: virtualized THP/HawkEye/Trident at both levels.
	Figure12 = experiments.Figure12
	// Figure13: Trident_pv under fragmented guest-physical memory.
	Figure13 = experiments.Figure13
	// Table3: pages allocated by mechanism.
	Table3 = experiments.Table3
	// Table4: 1GB allocation failure rates under fragmentation.
	Table4 = experiments.Table4
	// Table5: Redis/Memcached p99 latency.
	Table5 = experiments.Table5
	// FaultLatency: the §5.1.2 fault-latency microbenchmark.
	FaultLatency = experiments.FaultLatency
	// PvLatency: the §6 copy vs exchange promotion-latency microbenchmark.
	PvLatency = experiments.PvLatency
	// DirectMap: the §4.3 kernel direct-map experiment.
	DirectMap = experiments.DirectMap
	// TLBSweep: extension — sweep the 1GB L2 TLB capacity (Sandy Bridge →
	// Ice Lake) under Trident.
	TLBSweep = experiments.TLBSweep
)
